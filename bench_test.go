package gupcxx_test

// testing.B benchmarks, one family per table/figure of the paper plus the
// ablations called out in DESIGN.md. The cmd/ harnesses regenerate the
// figures with the paper's sampling methodology; these benches expose the
// same measurements to `go test -bench`.
//
//	BenchmarkMicro*      — Figs 2–4 (on-node per-op latency, E1)
//	BenchmarkOffNode*    — §IV-A off-node study (E5)
//	BenchmarkGUPS*       — Figs 5–7 (E2)
//	BenchmarkMatching*   — Fig 8 (E4)
//	BenchmarkAblation*   — A1/A2 (when_all short-circuit, ready singleton)

import (
	"fmt"
	"testing"

	"gupcxx"
	"gupcxx/internal/graph"
	"gupcxx/internal/gups"
	"gupcxx/internal/matching"
)

// versions under comparison, in the paper's presentation order.
var benchVersions = []gupcxx.Version{
	gupcxx.Legacy2021_3_0,
	gupcxx.Defer2021_3_6,
	gupcxx.Eager2021_3_6,
}

// microWorld runs fn on rank 0 of a two-rank single-node world, with the
// operation target allocated on rank 1 — co-located but not same-rank,
// like the paper's microbenchmarks.
func microWorld(b *testing.B, ver gupcxx.Version, fn func(r *gupcxx.Rank, target gupcxx.GlobalPtr[uint64])) {
	b.Helper()
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks:        2,
		Conduit:      gupcxx.PSHM,
		Version:      ver,
		SegmentBytes: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	err = w.Run(func(r *gupcxx.Rank) {
		target := gupcxx.New[uint64](r)
		targets := gupcxx.ExchangePtr(r, target)
		r.Barrier()
		if r.Me() == 0 {
			fn(r, targets[1])
		}
		r.Barrier()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMicroPut measures on-node rput latency with future completion
// (Figs 2–4, "put").
func BenchmarkMicroPut(b *testing.B) {
	for _, ver := range benchVersions {
		b.Run(ver.Name, func(b *testing.B) {
			microWorld(b, ver, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					gupcxx.Rput(r, uint64(i), t).Wait()
				}
			})
		})
	}
}

// BenchmarkMicroGet measures on-node rget latency (Figs 2–4, "get").
func BenchmarkMicroGet(b *testing.B) {
	for _, ver := range benchVersions {
		b.Run(ver.Name, func(b *testing.B) {
			microWorld(b, ver, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
				b.ResetTimer()
				var sink uint64
				for i := 0; i < b.N; i++ {
					sink += gupcxx.Rget(r, t).Wait()
				}
				benchSinkU64 = sink
			})
		})
	}
}

// BenchmarkMicroGetBulk measures on-node value-less get (into a local
// buffer), the form whose eager completion is allocation-free.
func BenchmarkMicroGetBulk(b *testing.B) {
	for _, ver := range benchVersions {
		b.Run(ver.Name, func(b *testing.B) {
			microWorld(b, ver, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
				var buf [1]uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					gupcxx.RgetBulk(r, t, buf[:]).Wait()
				}
			})
		})
	}
}

// BenchmarkMicroFetchAdd measures on-node value-producing atomic
// fetch-and-add (Figs 2–4, "fadd (value)").
func BenchmarkMicroFetchAdd(b *testing.B) {
	for _, ver := range benchVersions {
		b.Run(ver.Name, func(b *testing.B) {
			microWorld(b, ver, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
				ad := gupcxx.NewAtomicDomain[uint64](r)
				b.ResetTimer()
				var sink uint64
				for i := 0; i < b.N; i++ {
					sink += ad.FetchAdd(t, 1).Wait()
				}
				benchSinkU64 = sink
			})
		})
	}
}

// BenchmarkMicroFetchAddInto measures the paper's new fetch-to-memory
// atomic (Figs 2–4, "fadd (memory)"); it does not exist under 2021.3.0,
// matching the figures' missing bars.
func BenchmarkMicroFetchAddInto(b *testing.B) {
	for _, ver := range benchVersions {
		if ver.Name == gupcxx.Legacy2021_3_0.Name {
			continue // operation introduced by this work (§III-B)
		}
		b.Run(ver.Name, func(b *testing.B) {
			microWorld(b, ver, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
				ad := gupcxx.NewAtomicDomain[uint64](r)
				var old uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ad.FetchAddInto(t, 1, &old).Wait()
				}
				benchSinkU64 = old
			})
		})
	}
}

// BenchmarkMicroAdd measures on-node non-fetching atomic add (Figs 2–4,
// "add (no value)").
func BenchmarkMicroAdd(b *testing.B) {
	for _, ver := range benchVersions {
		b.Run(ver.Name, func(b *testing.B) {
			microWorld(b, ver, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
				ad := gupcxx.NewAtomicDomain[uint64](r)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ad.Add(t, 1).Wait()
				}
			})
		})
	}
}

var benchSinkU64 uint64

// offNodeWorld is microWorld over two simulated nodes: the target is
// remote, so completion is never synchronous and eager-vs-defer must not
// differ (E5).
func offNodeWorld(b *testing.B, ver gupcxx.Version, fn func(r *gupcxx.Rank, target gupcxx.GlobalPtr[uint64])) {
	b.Helper()
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks:        2,
		Conduit:      gupcxx.SIM,
		RanksPerNode: 1,
		SimLatency:   1, // minimal wire latency: we are measuring CPU path
		Version:      ver,
		SegmentBytes: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	err = w.Run(func(r *gupcxx.Rank) {
		target := gupcxx.New[uint64](r)
		targets := gupcxx.ExchangePtr(r, target)
		r.Barrier()
		if r.Me() == 0 {
			fn(r, targets[1])
		}
		r.Barrier()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkOffNodePut validates that the eager-notification branch does
// not slow the off-node path (§IV-A).
func BenchmarkOffNodePut(b *testing.B) {
	for _, ver := range benchVersions {
		b.Run(ver.Name, func(b *testing.B) {
			offNodeWorld(b, ver, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					gupcxx.Rput(r, uint64(i), t).Wait()
				}
			})
		})
	}
}

// BenchmarkOffNodeAdd is the atomic counterpart of BenchmarkOffNodePut.
func BenchmarkOffNodeAdd(b *testing.B) {
	for _, ver := range benchVersions {
		b.Run(ver.Name, func(b *testing.B) {
			offNodeWorld(b, ver, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
				ad := gupcxx.NewAtomicDomain[uint64](r)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ad.Add(t, 1).Wait()
				}
			})
		})
	}
}

// benchGUPS runs one GUPS variant on a single-node world and reports
// ns/update.
func benchGUPS(b *testing.B, ver gupcxx.Version, variant gups.Variant, ranks int) {
	b.Helper()
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks:        ranks,
		Conduit:      gupcxx.PSHM,
		Version:      ver,
		SegmentBytes: 8 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := gups.Config{
		LogTableSize:   18,
		UpdatesPerRank: int64(b.N),
	}
	err = w.Run(func(r *gupcxx.Rank) {
		bench, err := gups.New(r, cfg)
		if err != nil {
			b.Error(err)
			return
		}
		r.Barrier()
		if r.Me() == 0 {
			b.ResetTimer()
		}
		if err := bench.Run(variant); err != nil {
			b.Error(err)
		}
		r.Barrier()
		if r.Me() == 0 {
			b.StopTimer()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGUPS regenerates the Fig 5–7 family: all six variants × three
// versions, 4 ranks (use cmd/gups for the full 16-process sweep).
func BenchmarkGUPS(b *testing.B) {
	for _, variant := range gups.Variants() {
		b.Run(variant.String(), func(b *testing.B) {
			for _, ver := range benchVersions {
				b.Run(ver.Name, func(b *testing.B) {
					benchGUPS(b, ver, variant, 4)
				})
			}
		})
	}
}

// BenchmarkMatching regenerates Fig 8 at bench scale: solve time per
// input graph per version, 4 ranks (use cmd/matching for 16 ranks and
// paper-scaled graphs).
func BenchmarkMatching(b *testing.B) {
	inputs := map[string]*graph.Graph{
		"channel":  graph.Grid3D(16, 16, 64, 101),
		"delaunay": graph.Geometric(16384, 6, 102),
		"venturi":  graph.Geometric(16384, 4, 103),
		"random":   graph.GeometricNoise(16384, 6, 15, 104),
		"youtube":  graph.PowerLaw(16384, 5, 105),
	}
	for name, g := range inputs {
		b.Run(name, func(b *testing.B) {
			for _, ver := range benchVersions {
				b.Run(ver.Name, func(b *testing.B) {
					d := graph.NewDist(g.N, 4)
					for i := 0; i < b.N; i++ {
						err := gupcxx.Launch(gupcxx.Config{
							Ranks: 4, Conduit: gupcxx.PSHM, Version: ver,
							SegmentBytes: 8 << 20,
						}, func(r *gupcxx.Rank) {
							if _, err := matching.Run(r, g, d); err != nil {
								b.Error(err)
							}
						})
						if err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkAblationWhenAll isolates the §III-C when_all short-circuit: a
// future-conjoining loop over eager (ready) futures with the optimization
// on vs off (A1).
func BenchmarkAblationWhenAll(b *testing.B) {
	configs := []gupcxx.Version{
		gupcxx.Eager2021_3_6,
		func() gupcxx.Version {
			v := gupcxx.Eager2021_3_6
			v.Name = "eager-no-shortcircuit"
			v.WhenAllShortCircuit = false
			return v
		}(),
	}
	for _, ver := range configs {
		b.Run(ver.Name, func(b *testing.B) {
			microWorld(b, ver, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
				b.ResetTimer()
				f := r.MakeFuture()
				for i := 0; i < b.N; i++ {
					f = r.WhenAll(f, gupcxx.Rput(r, uint64(i), t).Op)
					if i%256 == 255 {
						f.Wait()
						f = r.MakeFuture()
					}
				}
				f.Wait()
			})
		})
	}
}

// BenchmarkPromiseAggregation quantifies the §IV-A remark that promise
// performance depends on how many operations are aggregated on a single
// promise: per-op cost of batches of local puts tracked by one promise,
// across batch sizes and versions.
func BenchmarkPromiseAggregation(b *testing.B) {
	for _, batch := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			for _, ver := range benchVersions {
				b.Run(ver.Name, func(b *testing.B) {
					microWorld(b, ver, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
						b.ResetTimer()
						for done := 0; done < b.N; {
							p := r.NewPromise()
							n := batch
							if rem := b.N - done; rem < n {
								n = rem
							}
							for j := 0; j < n; j++ {
								gupcxx.Rput(r, uint64(j), t, gupcxx.OpPromise(p))
							}
							p.Finalize().Wait()
							done += n
						}
					})
				})
			}
		})
	}
}

// BenchmarkAblationReadySingleton isolates the §III-B shared ready-cell
// optimization under eager puts (A2).
func BenchmarkAblationReadySingleton(b *testing.B) {
	configs := []gupcxx.Version{
		gupcxx.Eager2021_3_6,
		func() gupcxx.Version {
			v := gupcxx.Eager2021_3_6
			v.Name = "eager-no-singleton"
			v.ReadySingleton = false
			return v
		}(),
	}
	for _, ver := range configs {
		b.Run(ver.Name, func(b *testing.B) {
			microWorld(b, ver, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					gupcxx.Rput(r, uint64(i), t).Wait()
				}
			})
		})
	}
}

// BenchmarkBarrier measures collective latency per conduit — not a paper
// figure, but the synchronization cost underlying the application
// benchmarks' bulk-synchronous phases.
func BenchmarkBarrier(b *testing.B) {
	for _, conduit := range []gupcxx.Conduit{gupcxx.SMP, gupcxx.PSHM, gupcxx.UDP} {
		b.Run(conduit.String(), func(b *testing.B) {
			w, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 4, Conduit: conduit, SegmentBytes: 1 << 12})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			err = w.Run(func(r *gupcxx.Rank) {
				if r.Me() == 0 {
					b.ResetTimer()
				}
				for i := 0; i < b.N; i++ {
					r.Barrier()
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFloatAtomicAdd measures the CAS-loop float AMO (on-node,
// co-located target).
func BenchmarkFloatAtomicAdd(b *testing.B) {
	for _, ver := range benchVersions {
		b.Run(ver.Name, func(b *testing.B) {
			w, err := gupcxx.NewWorld(gupcxx.Config{
				Ranks: 2, Conduit: gupcxx.PSHM, Version: ver, SegmentBytes: 1 << 14,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			err = w.Run(func(r *gupcxx.Rank) {
				p := gupcxx.New[float64](r)
				ptrs := gupcxx.ExchangePtr(r, p)
				r.Barrier()
				if r.Me() == 0 {
					ad := gupcxx.NewAtomicDomainF64(r)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						ad.Add(ptrs[1], 1.0).Wait()
					}
				}
				r.Barrier()
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkCollectiveExchange measures a full 8-rank allgather
// (binomial-tree gather with coalesced up-forwarding, then a broadcast)
// per conduit. On UDP this is the end-to-end payoff of sender-side
// coalescing: interior tree vertices ship whole subtrees as one datagram.
func BenchmarkCollectiveExchange(b *testing.B) {
	for _, conduit := range []gupcxx.Conduit{gupcxx.SMP, gupcxx.PSHM, gupcxx.UDP} {
		b.Run(conduit.String(), func(b *testing.B) {
			w, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 8, Conduit: conduit, SegmentBytes: 1 << 12})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			err = w.Run(func(r *gupcxx.Rank) {
				if r.Me() == 0 {
					b.ResetTimer()
				}
				for i := 0; i < b.N; i++ {
					r.ExchangeU64(uint64(r.Me() + i))
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
