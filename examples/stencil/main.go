// Stencil: 1-D Jacobi iteration with halo exchange via one-sided puts and
// remote-completion callbacks.
//
// Each rank owns a block of a 1-D array plus two ghost cells. Every
// iteration it pushes its boundary values into its neighbors' ghost cells
// with rput, requesting two completions on the same operation:
//
//   - remote completion (RemoteRPCOn, UPC++'s remote_cx::as_rpc): a
//     callback that runs on the *target* rank after the data lands,
//     bumping the target's halo-arrival counter — so the receiver knows
//     its ghosts are fresh without any barrier;
//   - operation completion (future), conjoined with when_all on the
//     sender to bound outstanding puts.
//
// Interior points are computed while the halos fly — the classic APGAS
// communication/computation overlap the paper's completion machinery
// exists to support. The result is verified against a sequential
// reference.
//
// Run it:
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"
	"math"

	"gupcxx"
)

const (
	ranks   = 4
	perRank = 1000
	iters   = 200
)

// haloState is each rank's private arrival counter. The remote-completion
// callback and the wait loop both execute on the owning rank's progress
// goroutine, so no synchronization is needed — exactly UPC++'s persona
// rules.
type haloState struct {
	arrived int
}

func main() {
	n := ranks * perRank

	// Sequential reference: fixed zero boundary, 3-point mean.
	ref := make([]float64, n+2)
	for i := 1; i <= n; i++ {
		ref[i] = float64(i % 17)
	}
	tmp := make([]float64, n+2)
	for it := 0; it < iters; it++ {
		for i := 1; i <= n; i++ {
			tmp[i] = (ref[i-1] + ref[i] + ref[i+1]) / 3
		}
		ref, tmp = tmp, ref
	}

	// Distributed version.
	result := make([]float64, n)
	halos := make([]*haloState, ranks)
	err := gupcxx.Launch(gupcxx.Config{Ranks: ranks, Conduit: gupcxx.PSHM}, func(r *gupcxx.Rank) {
		me := r.Me()
		halos[me] = &haloState{}
		// Double-buffered block with ghost cells at [0] and [perRank+1].
		// Initialize (including the ghost slots, which edge ranks rely on
		// as the fixed zero boundary) BEFORE the synchronization point:
		// neighbors start pushing ghosts the moment the barrier releases
		// them, and a late local zeroing would clobber an early halo.
		cur := gupcxx.NewArray[float64](r, perRank+2)
		nxt := gupcxx.NewArray[float64](r, perRank+2)
		cs := cur.LocalSlice(r, perRank+2)
		ns := nxt.LocalSlice(r, perRank+2)
		for i := 1; i <= perRank; i++ {
			cs[i] = float64((me*perRank + i) % 17)
		}
		cs[0], cs[perRank+1] = 0, 0
		ns[0], ns[perRank+1] = 0, 0

		curs := gupcxx.ExchangePtr(r, cur)
		nxts := gupcxx.ExchangePtr(r, nxt)
		r.Barrier() // halos[*], buffers, and pointer tables complete
		bufs := [2][]gupcxx.GlobalPtr[float64]{curs, nxts}

		expected := 0
		perIter := 0
		if me > 0 {
			perIter++
		}
		if me < ranks-1 {
			perIter++
		}

		for it := 0; it < iters; it++ {
			remote := bufs[it%2] // neighbors' current-buffer pointers
			// markArrival runs on the *target* after the ghost value is
			// in place.
			markArrival := gupcxx.RemoteRPCOn(func(tr *gupcxx.Rank) {
				halos[tr.Me()].arrived++
			})

			f := r.MakeFuture()
			if me > 0 {
				ghost := remote[me-1].Element(perRank + 1)
				res := gupcxx.Rput(r, cs[1], ghost, gupcxx.OpFuture(), markArrival)
				f = r.WhenAll(f, res.Op)
			}
			if me < ranks-1 {
				ghost := remote[me+1].Element(0)
				res := gupcxx.Rput(r, cs[perRank], ghost, gupcxx.OpFuture(), markArrival)
				f = r.WhenAll(f, res.Op)
			}

			// Interior update overlaps the halo exchange.
			for i := 2; i <= perRank-1; i++ {
				ns[i] = (cs[i-1] + cs[i] + cs[i+1]) / 3
			}
			f.Wait()

			// Wait for this iteration's ghosts (counted by the remote
			// completions our neighbors attached to their puts).
			expected += perIter
			for halos[me].arrived < expected {
				r.Progress()
			}

			// Boundary points now that ghosts are fresh.
			ns[1] = (cs[0] + cs[1] + cs[2]) / 3
			ns[perRank] = (cs[perRank-1] + cs[perRank] + cs[perRank+1]) / 3

			cs, ns = ns, cs
			// An iteration boundary: neighbors must not overwrite the
			// buffer we are now reading before we finished using it.
			// Double buffering plus the arrival counter makes one
			// barrier per iteration sufficient.
			r.Barrier()
		}
		copy(result[me*perRank:(me+1)*perRank], cs[1:perRank+1])
		r.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}

	var maxErr float64
	for i := 0; i < n; i++ {
		if d := math.Abs(result[i] - ref[i+1]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("stencil: %d points, %d iterations, max |err| vs sequential = %.3g\n", n, iters, maxErr)
	if maxErr > 1e-9 {
		log.Fatal("stencil: verification FAILED")
	}
	fmt.Println("stencil: ok")
}
