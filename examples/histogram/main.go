// Histogram: fine-grained remote atomics with promise aggregation.
//
// Each rank draws samples from a skewed distribution and increments the
// owning rank's bucket with a remote atomic add — the exact communication
// pattern (random fine-grained updates, mostly to co-located memory on a
// single node) that motivates the paper's eager notifications. A promise
// tracks each batch of updates.
//
// The example prints the histogram and verifies the bucket sum equals the
// sample count, then shows the per-version completion cost using the
// runtime's engine statistics.
//
// Run it:
//
//	go run ./examples/histogram
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"gupcxx"
)

const (
	ranks          = 4
	bucketsPerRank = 8
	samplesPerRank = 100_000
	batch          = 256
)

func main() {
	for _, ver := range []gupcxx.Version{gupcxx.Defer2021_3_6, gupcxx.Eager2021_3_6} {
		run(ver)
	}
}

func run(ver gupcxx.Version) {
	cfg := gupcxx.Config{Ranks: ranks, Conduit: gupcxx.PSHM, Version: ver}
	totalBuckets := ranks * bucketsPerRank

	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		// Each rank owns a block of buckets in its shared segment.
		local := gupcxx.NewArray[uint64](r, bucketsPerRank)
		for i, s := 0, local.LocalSlice(r, bucketsPerRank); i < bucketsPerRank; i++ {
			s[i] = 0
		}
		blocks := gupcxx.ExchangePtr(r, local)
		r.Barrier()

		ad := gupcxx.NewAtomicDomain[uint64](r)
		rng := rand.New(rand.NewSource(int64(r.Me()) + 1))

		// Sample a triangular distribution over all buckets and bump the
		// owner's counter with a remote atomic add, batched on promises.
		for done := 0; done < samplesPerRank; {
			p := r.NewPromise()
			n := batch
			if rem := samplesPerRank - done; rem < n {
				n = rem
			}
			for i := 0; i < n; i++ {
				b := (rng.Intn(totalBuckets) + rng.Intn(totalBuckets)) / 2
				owner, off := b/bucketsPerRank, b%bucketsPerRank
				ad.Add(blocks[owner].Element(off), 1, gupcxx.OpPromise(p))
			}
			p.Finalize().Wait()
			done += n
		}
		r.Barrier()

		// Rank 0 gathers and prints the global histogram with RMA reads.
		if r.Me() == 0 {
			var total uint64
			fmt.Printf("\n%s — histogram of %d samples over %d buckets:\n",
				ver.Name, ranks*samplesPerRank, totalBuckets)
			for b := 0; b < totalBuckets; b++ {
				owner, off := b/bucketsPerRank, b%bucketsPerRank
				count := ad.Load(blocks[owner].Element(off)).Wait()
				total += count
				fmt.Printf("  bucket %2d %-52s %d\n", b,
					strings.Repeat("#", int(count/2000)), count)
			}
			if total != uint64(ranks*samplesPerRank) {
				log.Fatalf("lost updates: %d of %d", total, ranks*samplesPerRank)
			}
			st := r.Engine().Stats
			fmt.Printf("  completion machinery: %d cell allocs, %d deferred notifications, %d eager deliveries\n",
				st.CellAllocs, st.DeferQPushes, st.EagerDeliveries)
		}
		r.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
}
