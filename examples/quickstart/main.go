// Quickstart: the smallest complete gupcxx program.
//
// Four ranks allocate a cell each in their shared segments, exchange
// global pointers, and pass a token around the ring with one-sided puts —
// then demonstrate the three completion notification styles on the same
// operation: futures, promises, and the eager/deferred distinction that
// is the subject of the reproduced paper.
//
// Run it:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gupcxx"
)

func main() {
	cfg := gupcxx.Config{
		Ranks:   4,
		Conduit: gupcxx.PSHM, // co-located ranks, dynamic locality checks
		// Version defaults to Eager2021_3_6, the paper's proposal.
	}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		me, n := r.Me(), r.N()

		// Every rank allocates one int64 in its shared segment and
		// publishes the pointer to everyone (allgather).
		cell := gupcxx.New[int64](r)
		*cell.Local(r) = -1
		cells := gupcxx.ExchangePtr(r, cell)
		r.Barrier()

		// One-sided put to the next rank in the ring, synchronized with
		// the default completion: an operation future.
		next := cells[(me+1)%n]
		fut := gupcxx.Rput(r, int64(me), next)
		// Under the default eager version this future is already ready —
		// the target is co-located, so the data moved synchronously.
		fmt.Printf("rank %d: put future ready at initiation: %v\n", me, fut.Op.Ready())
		fut.Wait()
		r.Barrier()

		// Read our own cell directly (manual localization, §II-C) and
		// via a one-sided get producing a value future.
		direct := *cell.Local(r)
		viaGet := gupcxx.Rget(r, cell).Wait()
		if direct != viaGet || direct != int64((me-1+n)%n) {
			log.Fatalf("rank %d: inconsistent reads %d vs %d", me, direct, viaGet)
		}
		// Everyone must finish reading before the next phase overwrites
		// the cells.
		r.Barrier()

		// Promises aggregate many operations into one notification: put
		// a value into every peer's cell slot i (here: just re-put our id
		// everywhere) and wait once.
		p := r.NewPromise()
		for t := 0; t < n; t++ {
			gupcxx.Rput(r, int64(me), cells[t].Element(0), gupcxx.OpPromise(p))
		}
		p.Finalize().Wait()
		r.Barrier()

		if me == 0 {
			fmt.Println("quickstart: ok")
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
