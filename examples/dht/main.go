// DHT: a distributed hash table, the canonical UPC++ tutorial
// application, built on DistObject and RPC.
//
// Keys are hashed to an owner rank; insert and find ship to the owner as
// remote procedure calls that run on its progress goroutine, so the map
// needs no locking (the owner is the only writer — UPC++'s persona
// discipline). Each rank inserts a deterministic key set and then looks
// up keys owned by every other rank; the run validates every lookup and
// prints aggregate statistics.
//
// Run it:
//
//	go run ./examples/dht
package main

import (
	"fmt"
	"hash/fnv"
	"log"

	"gupcxx"
)

const (
	ranks          = 4
	insertsPerRank = 20_000
	lookupsPerRank = 20_000
)

// shard is one rank's partition of the table.
type shard struct {
	m map[string]int64
}

func ownerOf(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()) % n
}

func key(i int) string { return fmt.Sprintf("key-%d", i) }

func main() {
	err := gupcxx.Launch(gupcxx.Config{Ranks: ranks, Conduit: gupcxx.PSHM}, func(r *gupcxx.Rank) {
		me, n := r.Me(), r.N()
		table := gupcxx.NewDistObject(r, &shard{m: make(map[string]int64)})
		r.Barrier()

		// insert ships (key, value) to the owner; the promise aggregates
		// acknowledgment of a batch of inserts.
		insert := func(k string, v int64) gupcxx.Future {
			return gupcxx.RPC(r, ownerOf(k, n), func(tr *gupcxx.Rank) {
				// table.On(tr), not table.Local(): the captured handle
				// belongs to the sender; the shard lives on the target.
				table.On(tr).m[k] = v
			})
		}
		find := func(k string) gupcxx.FutureV[int64] {
			return gupcxx.RPCCall(r, ownerOf(k, n), func(tr *gupcxx.Rank) int64 {
				v, ok := table.On(tr).m[k]
				if !ok {
					return -1
				}
				return v
			})
		}

		// Phase 1: each rank inserts its slice of the key space,
		// conjoining completion futures in bounded windows.
		f := r.MakeFuture()
		for i := 0; i < insertsPerRank; i++ {
			id := me*insertsPerRank + i
			f = r.WhenAll(f, insert(key(id), int64(id)*3))
			if i%64 == 63 {
				f.Wait()
				f = r.MakeFuture()
			}
		}
		f.Wait()
		r.Barrier()

		// Phase 2: look up keys inserted by the next rank over.
		peer := (me + 1) % n
		bad := 0
		for i := 0; i < lookupsPerRank; i++ {
			id := peer*insertsPerRank + i%insertsPerRank
			if got := find(key(id)).Wait(); got != int64(id)*3 {
				bad++
			}
		}
		if bad != 0 {
			log.Fatalf("rank %d: %d bad lookups", me, bad)
		}
		// A missing key must report as such.
		if got := find("no-such-key").Wait(); got != -1 {
			log.Fatalf("rank %d: phantom key", me)
		}
		r.Barrier()

		// Aggregate statistics.
		local := uint64(len(table.Local().m))
		total := r.SumU64(local)
		maxShard := r.MaxU64(local)
		if me == 0 {
			if total != uint64(n*insertsPerRank) {
				log.Fatalf("table holds %d entries, want %d", total, n*insertsPerRank)
			}
			fmt.Printf("dht: %d entries across %d shards (largest %d, %.1f%% of even split)\n",
				total, n, maxShard, 100*float64(maxShard)/(float64(total)/float64(n)))
			fmt.Println("dht: ok")
		}
		r.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
}
