// Samplesort: a distributed sort combining collectives, RPC, and bulk RMA.
//
// The classic PGAS sample sort:
//
//  1. every rank sorts a local sample and rank 0 broadcasts p−1 splitters;
//  2. each rank partitions its data by splitter and reserves space in the
//     destination rank's receive buffer with a remote atomic fetch-add
//     (the paper's fetch-to-memory form keeps this allocation-free);
//  3. the partition is shipped with one bulk rput per destination,
//     tracked by a single promise;
//  4. after a barrier every rank sorts its received bucket.
//
// The global result is validated against sort.Float64s on the gathered
// input.
//
// Run it:
//
//	go run ./examples/samplesort
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"gupcxx"
)

const (
	ranks      = 4
	perRank    = 50_000
	oversample = 32
)

func main() {
	// Generate the global input deterministically.
	input := make([]float64, ranks*perRank)
	rng := rand.New(rand.NewSource(7))
	for i := range input {
		input[i] = rng.NormFloat64()
	}
	want := append([]float64(nil), input...)
	sort.Float64s(want)

	got := make([]float64, 0, len(input))
	counts := make([]int, ranks)

	err := gupcxx.Launch(gupcxx.Config{Ranks: ranks, Conduit: gupcxx.PSHM, SegmentBytes: 32 << 20},
		func(r *gupcxx.Rank) {
			me := r.Me()
			mine := append([]float64(nil), input[me*perRank:(me+1)*perRank]...)

			// --- Step 1: splitters. Rank 0 gathers a sample via RPC. ---
			var splitters []float64
			sample := make([]float64, oversample)
			sampleRng := rand.New(rand.NewSource(int64(me) + 100))
			for i := range sample {
				sample[i] = mine[sampleRng.Intn(len(mine))]
			}
			if me == 0 {
				all := append([]float64(nil), sample...)
				for t := 1; t < r.N(); t++ {
					part := gupcxx.RPCCall(r, t, func(tr *gupcxx.Rank) []float64 {
						s := make([]float64, oversample)
						rng := rand.New(rand.NewSource(int64(tr.Me()) + 100))
						for i := range s {
							s[i] = input[tr.Me()*perRank+rng.Intn(perRank)]
						}
						return s
					}).Wait()
					all = append(all, part...)
				}
				sort.Float64s(all)
				splitters = make([]float64, r.N()-1)
				for i := range splitters {
					splitters[i] = all[(i+1)*len(all)/r.N()]
				}
			}
			// Broadcast splitters (as raw bits, one word per splitter).
			var sbits []byte
			if me == 0 {
				sbits = floatsToBytes(splitters)
			}
			splitters = bytesToFloats(r.BroadcastBytes(0, sbits))

			// --- Step 2+3: partition and ship. ---
			// Receive buffer sized for worst-case skew, plus a cursor
			// that remote fetch-adds bump to reserve space.
			capacity := 4 * perRank
			recv := gupcxx.NewArray[float64](r, capacity)
			cursor := gupcxx.New[int64](r)
			*cursor.Local(r) = 0
			recvs := gupcxx.ExchangePtr(r, recv)
			cursors := gupcxx.ExchangePtr(r, cursor)
			r.Barrier()

			buckets := make([][]float64, r.N())
			for _, v := range mine {
				d := sort.SearchFloat64s(splitters, v)
				buckets[d] = append(buckets[d], v)
			}

			ad := gupcxx.NewAtomicDomain[int64](r)
			p := r.NewPromise()
			offs := make([]int64, r.N())
			// Reserve space on every destination with fetch-add into
			// memory (value-less completion, promise-aggregated).
			for d, b := range buckets {
				if len(b) == 0 {
					continue
				}
				ad.FetchAddInto(cursors[d], int64(len(b)), &offs[d], gupcxx.OpPromise(p))
			}
			p.Finalize().Wait()
			// Ship each bucket with one bulk put.
			p2 := r.NewPromise()
			for d, b := range buckets {
				if len(b) == 0 {
					continue
				}
				if offs[d]+int64(len(b)) > int64(capacity) {
					log.Fatalf("rank %d: bucket overflow on dest %d", me, d)
				}
				gupcxx.RputBulk(r, b, recvs[d].Element(int(offs[d])), gupcxx.OpPromise(p2))
			}
			p2.Finalize().Wait()
			r.Barrier()

			// --- Step 4: local sort of the received bucket. ---
			n := int(*cursor.Local(r))
			bucket := recv.LocalSlice(r, capacity)[:n]
			sort.Float64s(bucket)
			counts[me] = n
			r.Barrier()

			// Gather in rank order on rank 0 (sequentially via RPC).
			if me == 0 {
				got = append(got, bucket...)
				for t := 1; t < r.N(); t++ {
					part := gupcxx.RPCCall(r, t, func(tr *gupcxx.Rank) []float64 {
						m := counts[tr.Me()]
						out := make([]float64, m)
						copy(out, recvs[tr.Me()].LocalSlice(tr, m))
						return out
					}).Wait()
					got = append(got, part...)
				}
			}
			r.Barrier()
		})
	if err != nil {
		log.Fatal(err)
	}

	if len(got) != len(want) {
		log.Fatalf("samplesort: length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			log.Fatalf("samplesort: mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
	fmt.Printf("samplesort: sorted %d elements across %d ranks: ok\n", len(got), ranks)
}

func floatsToBytes(fs []float64) []byte {
	out := make([]byte, 8*len(fs))
	for i, f := range fs {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(f))
	}
	return out
}

func bytesToFloats(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}
