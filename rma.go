package gupcxx

import (
	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
)

// This file implements the one-sided RMA operations. Every operation
// follows the same shape, which is the paper's §III-A in code:
//
//  1. perform the locality query (free under ConstexprLocal on SMP);
//  2. if the target is directly addressable, move the data synchronously
//     through shared memory and deliver completions via
//     core.Engine.DeliverSync — eager requests are satisfied on the spot,
//     deferred ones route through the progress queue;
//  3. otherwise register the completions (core.Engine.PrepareAsync) and
//     launch the AM protocol; the acknowledgment fires them from inside a
//     later progress call.
//
// The off-node path is thus exactly one branch longer than in a runtime
// without eager notification — the property validated by the off-node
// microbenchmark (§IV-A and experiment E5).

// defaultCx is the completion used when an operation is called without
// any: an operation-completion future in the version's default mode.
var defaultCx = []Cx{core.OpFuture()}

func cxsOrDefault(cxs []Cx) []Cx {
	if len(cxs) == 0 {
		return defaultCx
	}
	return cxs
}

// deliverRemoteLocal delivers a remote-completion action for an operation
// whose target is co-located: the action still runs on the target rank's
// progress goroutine, never the initiator's, so it is shipped as an AM.
func deliverRemoteLocal(r *Rank, target int32, cxs []Cx) {
	if fn := core.RemoteFn(cxs); fn != nil {
		r.ep.Send(int(target), gasnet.Msg{
			Handler: hRPCExec,
			Fn:      func(ep *gasnet.Endpoint) { fn(ep.Ctx) },
		})
	}
}

// Rput initiates a one-sided put of val to dst, returning the futures for
// the requested completions (default: an operation-completion future).
func Rput[T any](r *Rank, val T, dst GlobalPtr[T], cxs ...Cx) Result {
	cxs = cxsOrDefault(cxs)
	if r.localTo(dst.rank) {
		r.eng.LegacyAlloc()
		seg := r.w.dom.Segment(int(dst.rank))
		seg.CopyIn(dst.off, gasnet.ValueBytes(&val))
		deliverRemoteLocal(r, dst.rank, cxs)
		return r.eng.DeliverSync(cxs)
	}
	res, ac := r.eng.PrepareAsync(cxs)
	var remoteFn func(*gasnet.Endpoint)
	if fn := core.RemoteFn(cxs); fn != nil {
		remoteFn = func(ep *gasnet.Endpoint) { fn(ep.Ctx) }
	}
	r.ep.PutRemote(int(dst.rank), dst.off, gasnet.ValueBytes(&val), remoteFn, ac.Fire)
	return res
}

// RputBulk initiates a one-sided put of the slice src to the array headed
// by dst. The source buffer may be reused as soon as source completion is
// delivered (with the default completions, immediately after return: the
// substrate copies at injection).
func RputBulk[T any](r *Rank, src []T, dst GlobalPtr[T], cxs ...Cx) Result {
	cxs = cxsOrDefault(cxs)
	if r.localTo(dst.rank) {
		r.eng.LegacyAlloc()
		seg := r.w.dom.Segment(int(dst.rank))
		seg.CopyIn(dst.off, gasnet.SliceBytes(src))
		deliverRemoteLocal(r, dst.rank, cxs)
		return r.eng.DeliverSync(cxs)
	}
	res, ac := r.eng.PrepareAsync(cxs)
	var remoteFn func(*gasnet.Endpoint)
	if fn := core.RemoteFn(cxs); fn != nil {
		remoteFn = func(ep *gasnet.Endpoint) { fn(ep.Ctx) }
	}
	r.ep.PutRemote(int(dst.rank), dst.off, gasnet.SliceBytes(src), remoteFn, ac.Fire)
	return res
}

// Rget initiates a one-sided get of the value at src, returning a future
// that carries it. The optional mode selects eager/deferred notification
// for the future (default: the version's default mode).
//
// A value-carrying ready future cannot use the shared ready cell — the
// value must be stored somewhere — so even the eager path costs one cell
// allocation (§III-B); compare RgetBulk, whose value-less completion is
// allocation-free under eager notification.
func Rget[T any](r *Rank, src GlobalPtr[T], mode ...Mode) FutureV[T] {
	m := core.ModeDefault
	if len(mode) > 0 {
		m = mode[0]
	}
	if r.localTo(src.rank) {
		r.eng.LegacyAlloc()
		seg := r.w.dom.Segment(int(src.rank))
		var val T
		seg.CopyOut(src.off, gasnet.ValueBytes(&val))
		if eagerMode(r, m) {
			return core.NewReadyFutureV(r.eng, val)
		}
		fut, vp, h := core.NewFutureV[T](r.eng)
		*vp = val
		h.Defer()
		return fut
	}
	fut, vp, h := core.NewFutureV[T](r.eng)
	r.ep.GetRemote(int(src.rank), src.off, gasnet.SizeOf[T](), gasnet.ValueBytes(vp), h.Fulfill)
	return fut
}

// RgetPromise initiates a one-sided get of the value at src, delivering
// the value through the value-carrying promise p.
func RgetPromise[T any](r *Rank, src GlobalPtr[T], p *PromiseV[T], mode ...Mode) {
	m := core.ModeDefault
	if len(mode) > 0 {
		m = mode[0]
	}
	p.Bind()
	if r.localTo(src.rank) {
		r.eng.LegacyAlloc()
		seg := r.w.dom.Segment(int(src.rank))
		var val T
		seg.CopyOut(src.off, gasnet.ValueBytes(&val))
		if eagerMode(r, m) {
			p.Deliver(val)
		} else {
			p.DeliverDeferred(val)
		}
		return
	}
	buf := new(T)
	r.ep.GetRemote(int(src.rank), src.off, gasnet.SizeOf[T](), gasnet.ValueBytes(buf),
		func() { p.Deliver(*buf) })
}

// RgetBulk initiates a one-sided get of len(dst) elements from the array
// headed by src into the local buffer dst. Completion is value-less (the
// data lands in memory), making it combinable on promises and cheap to
// conjoin — the form the GUPS RMA variants use.
func RgetBulk[T any](r *Rank, src GlobalPtr[T], dst []T, cxs ...Cx) Result {
	cxs = cxsOrDefault(cxs)
	rejectRemoteCx(cxs, "RgetBulk")
	if r.localTo(src.rank) {
		r.eng.LegacyAlloc()
		seg := r.w.dom.Segment(int(src.rank))
		seg.CopyOut(src.off, gasnet.SliceBytes(dst))
		return r.eng.DeliverSync(cxs)
	}
	res, ac := r.eng.PrepareAsync(cxs)
	r.ep.GetRemote(int(src.rank), src.off, len(dst)*gasnet.SizeOf[T](),
		gasnet.SliceBytes(dst), ac.Fire)
	return res
}

// rejectRemoteCx panics when a get-class operation is asked for remote
// completion, which (as in UPC++) is defined only for puts — there is no
// data arrival at the target to attach it to.
func rejectRemoteCx(cxs []Cx, op string) {
	if core.HasRemote(cxs) {
		panic("gupcxx: " + op + " does not support remote completion (puts only)")
	}
}

// eagerMode resolves a Mode against the rank's version default.
func eagerMode(r *Rank, m Mode) bool {
	switch m {
	case core.ModeEager:
		return true
	case core.ModeDefer:
		return false
	default:
		return r.w.ver.EagerDefault
	}
}
