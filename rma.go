package gupcxx

import (
	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
)

// This file implements the one-sided RMA operations as thin typed shims
// over the unified operation-lifecycle pipeline (internal/core/op.go).
// Each operation performs the locality query (free under ConstexprLocal on
// SMP), then describes itself to core.Engine.Initiate — the pipeline owns
// the eager-vs-deferred decision, the completion-state bookkeeping, and
// the per-phase instrumentation; the shim contributes only the family's
// data movement: a synchronous segment copy (Move/MoveV) or a substrate
// injection (Inject).
//
// The off-node path is thus exactly one branch longer than in a runtime
// without eager notification — the property validated by the off-node
// microbenchmark (§IV-A and experiment E5).

// defaultCx is the completion used when an operation is called without
// any: an operation-completion future in the version's default mode.
var defaultCx = []Cx{core.OpFuture()}

func cxsOrDefault(cxs []Cx) []Cx {
	if len(cxs) == 0 {
		return defaultCx
	}
	return cxs
}

// shipRemote delivers a remote-completion action for an operation whose
// target is co-located: the action still runs on the target rank's
// progress goroutine, never the initiator's, so it is shipped as an AM.
func (r *Rank) shipRemote(target int32, rfn func(ctx any)) {
	r.ep.Send(int(target), gasnet.Msg{
		Handler: hRPCExec,
		Fn:      func(ep *gasnet.Endpoint) { rfn(ep.Ctx) },
	})
}

// wrapRemote adapts the pipeline's composed remote-completion action to
// the substrate's endpoint-callback shape.
func wrapRemote(rfn func(ctx any)) func(*gasnet.Endpoint) {
	if rfn == nil {
		return nil
	}
	return func(ep *gasnet.Endpoint) { rfn(ep.Ctx) }
}

// Rput initiates a one-sided put of val to dst, returning the futures for
// the requested completions (default: an operation-completion future).
func Rput[T any](r *Rank, val T, dst GlobalPtr[T], cxs ...Cx) Result {
	cxs = cxsOrDefault(cxs)
	if r.localTo(dst.rank) {
		return r.eng.Initiate(core.OpDesc{
			Kind:  core.OpRMA,
			Local: true,
			Move: func() {
				r.w.dom.Segment(int(dst.rank)).CopyIn(dst.off, gasnet.ValueBytes(&val))
			},
			ShipRemote: func(rfn func(ctx any)) { r.shipRemote(dst.rank, rfn) },
		}, cxs)
	}
	if r.wireOnly(int(dst.rank)) && core.HasRemote(cxs) {
		// The remote-completion callback is a closure; it cannot follow the
		// data into another process. RputNotify is the wire-encodable form.
		return failNotWireEncodable(r, core.OpRMA, int(dst.rank), cxs)
	}
	return r.eng.Initiate(core.OpDesc{
		Kind:  core.OpRMA,
		Peer:  int(dst.rank),
		Admit: true,
		Inject: func(rfn func(ctx any), done func(error)) {
			r.ep.PutRemote(int(dst.rank), dst.off, gasnet.ValueBytes(&val), wrapRemote(rfn), done)
		},
	}, cxs)
}

// RputBulk initiates a one-sided put of the slice src to the array headed
// by dst. The source buffer may be reused as soon as source completion is
// delivered (with the default completions, immediately after return: the
// substrate copies at injection).
func RputBulk[T any](r *Rank, src []T, dst GlobalPtr[T], cxs ...Cx) Result {
	cxs = cxsOrDefault(cxs)
	if r.localTo(dst.rank) {
		return r.eng.Initiate(core.OpDesc{
			Kind:  core.OpRMA,
			Local: true,
			Move: func() {
				r.w.dom.Segment(int(dst.rank)).CopyIn(dst.off, gasnet.SliceBytes(src))
			},
			ShipRemote: func(rfn func(ctx any)) { r.shipRemote(dst.rank, rfn) },
		}, cxs)
	}
	if r.wireOnly(int(dst.rank)) && core.HasRemote(cxs) {
		return failNotWireEncodable(r, core.OpRMA, int(dst.rank), cxs)
	}
	return r.eng.Initiate(core.OpDesc{
		Kind:  core.OpRMA,
		Peer:  int(dst.rank),
		Admit: true,
		Inject: func(rfn func(ctx any), done func(error)) {
			r.ep.PutRemote(int(dst.rank), dst.off, gasnet.SliceBytes(src), wrapRemote(rfn), done)
		},
	}, cxs)
}

// Rget initiates a one-sided get of the value at src, returning a future
// that carries it. The optional mode selects eager/deferred notification
// for the future (default: the version's default mode).
//
// Under the ValueInline version knob the eager path is allocation-free:
// the pipeline returns the value inline in the FutureV struct instead of
// a heap cell (the §III-B cost the paper could not remove).
func Rget[T any](r *Rank, src GlobalPtr[T], mode ...Mode) FutureV[T] {
	m := core.ModeDefault
	if len(mode) > 0 {
		m = mode[0]
	}
	if r.localTo(src.rank) {
		return core.InitiateV(r.eng, core.OpDescV[T]{
			Kind:  core.OpRMA,
			Local: true,
			Mode:  m,
			MoveV: func() T {
				var val T
				r.w.dom.Segment(int(src.rank)).CopyOut(src.off, gasnet.ValueBytes(&val))
				return val
			},
		})
	}
	return core.InitiateV(r.eng, core.OpDescV[T]{
		Kind:  core.OpRMA,
		Peer:  int(src.rank),
		Admit: true,
		Inject: func(slot *T, done func(error)) {
			r.ep.GetRemote(int(src.rank), src.off, gasnet.SizeOf[T](), gasnet.ValueBytes(slot), done)
		},
	})
}

// RgetPromise initiates a one-sided get of the value at src, delivering
// the value through the value-carrying promise p. The substrate writes the
// arriving value directly into the promise's value slot — no intermediate
// per-call buffer.
func RgetPromise[T any](r *Rank, src GlobalPtr[T], p *PromiseV[T], mode ...Mode) {
	m := core.ModeDefault
	if len(mode) > 0 {
		m = mode[0]
	}
	core.InitiateVPromise(r.eng, core.OpDescV[T]{
		Kind:  core.OpRMA,
		Local: r.localTo(src.rank),
		Mode:  m,
		Peer:  int(src.rank),
		Admit: true,
		MoveV: func() T {
			var val T
			r.w.dom.Segment(int(src.rank)).CopyOut(src.off, gasnet.ValueBytes(&val))
			return val
		},
		Inject: func(slot *T, done func(error)) {
			r.ep.GetRemote(int(src.rank), src.off, gasnet.SizeOf[T](), gasnet.ValueBytes(slot), done)
		},
	}, p)
}

// RgetBulk initiates a one-sided get of len(dst) elements from the array
// headed by src into the local buffer dst. Completion is value-less (the
// data lands in memory), making it combinable on promises and cheap to
// conjoin — the form the GUPS RMA variants use.
func RgetBulk[T any](r *Rank, src GlobalPtr[T], dst []T, cxs ...Cx) Result {
	cxs = cxsOrDefault(cxs)
	rejectRemoteCx(cxs, "RgetBulk")
	if r.localTo(src.rank) {
		return r.eng.Initiate(core.OpDesc{
			Kind:  core.OpRMA,
			Local: true,
			Move: func() {
				r.w.dom.Segment(int(src.rank)).CopyOut(src.off, gasnet.SliceBytes(dst))
			},
		}, cxs)
	}
	return r.eng.Initiate(core.OpDesc{
		Kind:  core.OpRMA,
		Peer:  int(src.rank),
		Admit: true,
		Inject: func(_ func(ctx any), done func(error)) {
			r.ep.GetRemote(int(src.rank), src.off, len(dst)*gasnet.SizeOf[T](),
				gasnet.SliceBytes(dst), done)
		},
	}, cxs)
}

// rejectRemoteCx panics when a get-class operation is asked for remote
// completion, which (as in UPC++) is defined only for puts — there is no
// data arrival at the target to attach it to.
func rejectRemoteCx(cxs []Cx, op string) {
	if core.HasRemote(cxs) {
		panic("gupcxx: " + op + " does not support remote completion (puts only)")
	}
}
