package gupcxx_test

// Operations-plane integration tests: the /metrics and /debug/gupcxx
// export surface against a real UDP world, event delivery through
// World.SubscribeEvents, and clean teardown of the observability
// goroutines.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gupcxx"
)

// obsWorkload drives at least four op families (RMA put+get, atomics,
// RPC, collectives) across a two-rank world so every exposition surface
// has non-trivial counters to show.
func obsWorkload(r *gupcxx.Rank) {
	tgt := gupcxx.New[uint64](r)
	tgts := gupcxx.ExchangePtr(r, tgt)
	r.Barrier()
	if r.Me() == 0 {
		peer := tgts[1]
		ad := gupcxx.NewAtomicDomain[uint64](r)
		for i := 0; i < 32; i++ {
			gupcxx.Rput(r, uint64(i), peer).Wait()
			_ = gupcxx.Rget(r, peer).Wait()
			ad.FetchAdd(peer, 1).Wait()
			gupcxx.RPC(r, 1, func(*gupcxx.Rank) {}).Wait()
		}
	}
	r.Barrier()
}

// TestMetricsEndpointLive scrapes a bound listener on a UDP world after a
// mixed workload: the Prometheus text must carry non-zero op counters and
// latency histograms for at least three families, substrate counters,
// per-pair flow gauges, and the liveness gauge; the debug snapshot must
// carry the liveness matrix and flow table.
func TestMetricsEndpointLive(t *testing.T) {
	defer leakCheck(t)()
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.UDP, SegmentBytes: 1 << 14,
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	addr := w.MetricsAddr()
	if addr == "" || strings.HasSuffix(addr, ":0") {
		t.Fatalf("MetricsAddr = %q, want a bound host:port", addr)
	}
	w.EnablePhaseSampling()
	if err := w.Run(obsWorkload); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	body := string(raw)

	// Non-zero initiation counters for the driven families.
	for _, family := range []string{"rma", "atomic", "rpc", "coll"} {
		prefix := `gupcxx_ops_total{family="` + family + `",phase="initiated"} `
		val := metricValue(t, body, prefix)
		if val == "" || val == "0" {
			t.Errorf("ops counter for %s = %q, want non-zero", family, val)
		}
	}
	// Latency histograms for at least three families (sampler installed).
	histFamilies := 0
	for _, family := range []string{"rma", "atomic", "rpc", "coll"} {
		if strings.Contains(body, `gupcxx_op_phase_latency_seconds_count{family="`+family+`"`) {
			histFamilies++
		}
	}
	if histFamilies < 3 {
		t.Errorf("latency histograms present for %d families, want >= 3", histFamilies)
	}
	for _, want := range []string{
		"# TYPE gupcxx_ops_total counter",
		"# TYPE gupcxx_op_phase_latency_seconds histogram",
		`gupcxx_op_phase_latency_seconds_bucket{family="rma",phase="initiated",le="+Inf"}`,
		`gupcxx_engine_total{counter="progress_calls"}`,
		`gupcxx_substrate_total{counter="datagrams_sent"}`,
		`gupcxx_peer_state{rank="0",peer="1"} 0`,
		`gupcxx_flow_window{rank="0",peer="1"}`,
		`gupcxx_flow_inflight_bytes{rank="0",peer="1"}`,
		"gupcxx_events_published_total",
		"gupcxx_ranks 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Prometheus text-format shape: every non-comment line is
	// "name_or_labels value" with no empty label braces.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, "{}") {
			t.Errorf("empty label braces: %q", line)
		}
		if i := strings.LastIndexByte(line, ' '); i <= 0 || i == len(line)-1 {
			t.Errorf("malformed sample line: %q", line)
		}
	}

	// Debug snapshot: JSON with liveness matrix, flows, events, ops.
	resp, err = http.Get("http://" + addr + "/debug/gupcxx")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Conduit  string                       `json:"conduit"`
		Ranks    int                          `json:"ranks"`
		Version  string                       `json:"version"`
		Ops      map[string]map[string]int64  `json:"ops"`
		Liveness [][]string                   `json:"liveness"`
		Flows    []map[string]json.RawMessage `json:"flows"`
		Events   struct {
			Published int64             `json:"published"`
			Dropped   int64             `json:"dropped"`
			Recent    []json.RawMessage `json:"recent"`
		} `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("debug snapshot is not JSON: %v", err)
	}
	resp.Body.Close()
	if snap.Conduit != "udp" || snap.Ranks != 2 {
		t.Errorf("snapshot identity = %s/%d, want udp/2", snap.Conduit, snap.Ranks)
	}
	if len(snap.Liveness) != 2 || snap.Liveness[0][0] != "self" || snap.Liveness[0][1] != "alive" {
		t.Errorf("liveness matrix = %v", snap.Liveness)
	}
	if len(snap.Flows) != 2 {
		t.Errorf("flow table has %d rows, want 2 (one per directed pair)", len(snap.Flows))
	}
	if snap.Ops["rma"]["initiated"] == 0 {
		t.Error("snapshot ops matrix empty for rma/initiated")
	}
}

// metricValue extracts the sample value following the first line that
// starts with prefix, or "" when absent.
func metricValue(t *testing.T, body, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			return strings.TrimPrefix(line, prefix)
		}
	}
	return ""
}

// TestMetricsHandlerHTTPTest mounts the handler on an httptest server —
// no Config.MetricsAddr, no bound listener of our own — and checks both
// endpoints work standalone.
func TestMetricsHandlerHTTPTest(t *testing.T) {
	defer leakCheck(t)()
	w, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.EnablePhaseSampling()
	if err := w.Run(obsWorkload); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(w.MetricsHandler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	if !strings.Contains(body, `gupcxx_ops_total{family="rma",phase="eager-completed"}`) {
		t.Errorf("handler metrics missing op matrix:\n%.400s", body)
	}
	// PSHM world: no flow gauges (no reliability layer), but histograms
	// and engine counters still present.
	if strings.Contains(body, "gupcxx_flow_window") {
		t.Error("flow gauges exposed on a conduit without a reliability layer")
	}
	if !strings.Contains(body, "gupcxx_op_phase_latency_seconds_count") {
		t.Error("no latency histograms despite the sampler hook")
	}

	resp, err = http.Get(ts.URL + "/debug/gupcxx")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("debug snapshot not JSON: %v", err)
	}
	resp.Body.Close()
	if snap["conduit"] != "pshm" {
		t.Errorf("snapshot conduit = %v", snap["conduit"])
	}
}

// TestMetricsServerLifecycle: worlds with the listener on must tear it
// down completely in Close (no goroutine leaks, port released), and a
// bad address must fail construction.
func TestMetricsServerLifecycle(t *testing.T) {
	defer leakCheck(t)()
	for i := 0; i < 3; i++ {
		w, err := gupcxx.NewWorld(gupcxx.Config{
			Ranks: 2, Conduit: gupcxx.UDP, SegmentBytes: 1 << 12,
			MetricsAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		addr := w.MetricsAddr()
		w.Close()
		w.Close() // idempotent
		if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
			t.Error("scrape succeeded after World.Close")
		}
	}
	if _, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, MetricsAddr: "256.1.2.3:bogus",
	}); err == nil {
		t.Error("NewWorld accepted an unbindable MetricsAddr")
	}
}

// TestWorldCloseWithActiveSubscribers: Close stops the event sources but
// must not invalidate live subscriptions — queued events stay drainable.
func TestWorldCloseWithActiveSubscribers(t *testing.T) {
	defer leakCheck(t)()
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.SIM, SimLatency: 50 * time.Millisecond,
		SegmentBytes: 1 << 12, MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := w.SubscribeEvents()
	defer sub.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		ptr := gupcxx.New[int64](r)
		ptrs := gupcxx.ExchangePtr(r, ptr)
		res := gupcxx.Rput(r, 1, ptrs[(r.Me()+1)%r.N()],
			gupcxx.OpFuture(), gupcxx.OpDeadline(time.Millisecond))
		if werr := res.Op.WaitErr(); !errors.Is(werr, gupcxx.ErrDeadlineExceeded) {
			t.Errorf("Err = %v, want ErrDeadlineExceeded", werr)
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Both ranks' puts expired: the events were published before Close
	// and must still drain from the live subscription.
	evs := sub.Poll(nil)
	expiries := 0
	for _, ev := range evs {
		if ev.Kind == gupcxx.EvDeadlineExpired {
			expiries++
			if ev.Peer != -1 {
				t.Errorf("deadline event peer = %d, want -1", ev.Peer)
			}
			if gupcxx.OpKind(ev.A) != gupcxx.OpRMA {
				t.Errorf("deadline event family = %v, want rma", gupcxx.OpKind(ev.A))
			}
		}
	}
	if expiries != 2 {
		t.Errorf("drained %d deadline-expired events after Close, want 2", expiries)
	}
	if sub.Dropped() != 0 {
		t.Errorf("subscription dropped %d events", sub.Dropped())
	}
}
