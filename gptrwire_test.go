package gupcxx_test

import (
	"strings"
	"testing"

	"gupcxx"
)

func TestGptrWireRoundTrip(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 14},
		func(r *gupcxx.Rank) {
			p := gupcxx.New[uint64](r)
			w := gupcxx.EncodePtr(r, p)
			if w == 0 {
				t.Error("valid pointer encoded as 0 (the null encoding)")
			}
			got, err := gupcxx.DecodePtr[uint64](r, w)
			if err != nil {
				t.Fatalf("decode own pointer: %v", err)
			}
			if got.Rank() != p.Rank() || got.Offset() != p.Offset() {
				t.Errorf("round trip %v -> %v", p, got)
			}

			// The null pointer is 0 on the wire, both ways.
			var null gupcxx.GlobalPtr[uint64]
			if gupcxx.EncodePtr(r, null) != 0 {
				t.Error("null pointer did not encode as 0")
			}
			back, err := gupcxx.DecodePtr[uint64](r, 0)
			if err != nil || !back.Null() {
				t.Errorf("0 decoded to %v, %v", back, err)
			}
			r.Barrier()
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGptrWireExchange drives the encoding through a real allgather: the
// path every multiproc world uses to publish allocations.
func TestGptrWireExchange(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 4, Conduit: gupcxx.UDP, SegmentBytes: 1 << 14},
		func(r *gupcxx.Rank) {
			p := gupcxx.New[int64](r)
			ptrs := gupcxx.ExchangePtr(r, p)
			for i, q := range ptrs {
				if q.Rank() != i {
					t.Errorf("slot %d holds rank %d's pointer", i, q.Rank())
				}
				if q.Null() {
					t.Errorf("slot %d null", i)
				}
			}
			r.Barrier()
			// Prove the decoded pointers address real memory.
			if r.Me() == 0 {
				for i, q := range ptrs {
					gupcxx.Rput(r, int64(100+i), q).Wait()
				}
			}
			r.Barrier()
			if got := *p.Local(r); got != int64(100+r.Me()) {
				t.Errorf("rank %d word = %d", r.Me(), got)
			}
			r.Barrier()
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGptrWireRejects feeds DecodePtr the three malformed shapes —
// out-of-range rank, stale segment id, out-of-segment offset — and
// expects counted, descriptive rejections with a zero pointer, never a
// panic or a pointer into the wrong memory.
func TestGptrWireRejects(t *testing.T) {
	w, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	runErr := w.Run(func(r *gupcxx.Rank) {
		if r.Me() != 0 {
			r.Barrier()
			return
		}
		p := gupcxx.New[uint64](r)
		good := gupcxx.EncodePtr(r, p)
		cases := []struct {
			name string
			wire uint64
			want string
		}{
			{"bad rank", good | 0xFFFF<<48, "names rank"},
			{"stale segment id", good ^ 1<<32, "segment id"},
			{"offset past segment end", good&^0xFFFFFFFF | (1<<12 - 4), "outside"},
			{"offset overflow", good&^0xFFFFFFFF | 0xFFFFFFFC, "outside"},
		}
		for _, tc := range cases {
			got, err := gupcxx.DecodePtr[uint64](r, tc.wire)
			if err == nil {
				t.Errorf("%s: decoded %#x without error", tc.name, tc.wire)
				continue
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
			}
			if !got.Null() {
				t.Errorf("%s: rejected decode returned non-zero pointer %v", tc.name, got)
			}
		}
		r.Barrier()
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if got := w.Domain().Stats().GptrRejects; got != 4 {
		t.Errorf("GptrRejects = %d, want 4", got)
	}
}

// FuzzDecodeGptr asserts the decode side treats the wire word as fully
// untrusted: any 64-bit pattern either round-trips to a validated pointer
// or comes back as (zero pointer, error) — never a panic, never a
// pointer outside the segment.
func FuzzDecodeGptr(f *testing.F) {
	w, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 12})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(w.Close)
	r := w.Rank(0)
	f.Add(uint64(0))
	f.Add(uint64(1)<<32 | 8)              // rank 0, segid 1, offset 8
	f.Add(uint64(0xFFFF)<<48 | 1<<32 | 8) // absurd rank
	f.Add(uint64(1)<<48 | 0xBEEF<<32 | 8) // wrong segment id
	f.Add(uint64(1)<<32 | 0xFFFFFFFF)     // offset at u32 max
	f.Add(uint64(1)<<32 | (1<<12 - 1))    // last byte of the segment
	f.Fuzz(func(t *testing.T, wire uint64) {
		p, err := gupcxx.DecodePtr[uint64](r, wire)
		if err != nil {
			if !p.Null() {
				t.Fatalf("error %v alongside non-zero pointer %v", err, p)
			}
			return
		}
		if wire == 0 {
			if !p.Null() {
				t.Fatal("0 must decode to null")
			}
			return
		}
		if p.Rank() < 0 || p.Rank() >= 2 {
			t.Fatalf("accepted pointer names rank %d", p.Rank())
		}
		if uint64(p.Offset())+8 > 1<<12 {
			t.Fatalf("accepted pointer spills past segment: offset %d", p.Offset())
		}
		// An accepted word must re-encode to itself: the encoding is a
		// bijection on valid pointers.
		if back := gupcxx.EncodePtr(r, p); back != wire {
			t.Fatalf("re-encode %#x != original %#x", back, wire)
		}
	})
}
