package gupcxx_test

import (
	"errors"
	"os"
	"strconv"
	"testing"
	"time"

	"gupcxx"
)

// soakSeconds reads the soak duration from GUPCXX_SOAK_SECONDS. The
// default is a short smoke pass so plain `go test ./...` stays fast; the
// Makefile's test-soak target runs the full 30 seconds.
func soakSeconds() time.Duration {
	if s := os.Getenv("GUPCXX_SOAK_SECONDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 2 * time.Second
}

// TestSoakMixedChurn drives every op family — wire RPC, closure RPC, RMA,
// remote atomics, collectives — concurrently from four ranks over a lossy
// UDP conduit with a deliberately small send window, for long enough that
// retransmission, adaptive-window, and admission paths all cycle many
// times. The invariants are the robustness contract, not throughput:
// every initiated operation resolves with its value or a typed error
// (backpressure is the only error budgeted under loss), the world tears
// down without wedged goroutines, and the reliability layer demonstrably
// did its job (retransmits occurred, reorder memory stayed bounded).
func TestSoakMixedChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped under -short")
	}
	defer leakCheck(t)()
	cfg := gupcxx.Config{
		Ranks: 4, Conduit: gupcxx.UDP, SegmentBytes: 1 << 16,
		RelWindow:        8, // tiny window: starvation and AIMD cycling are the point
		RelWindowMin:     4,
		BackpressureWait: 50 * time.Millisecond,
	}
	// A GUPCXX_UDP_FAULT profile in the environment (the Makefile sets 25%
	// drop) takes effect only when Config.Fault is nil; absent the env
	// var, inject the same loss rate here so the soak is lossy either way.
	if os.Getenv("GUPCXX_UDP_FAULT") == "" {
		cfg.Fault = &gupcxx.FaultConfig{Seed: 99, Drop: 0.25}
	}
	w, err := gupcxx.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	echo := w.RegisterRPC(func(r *gupcxx.Rank, args []byte) []byte {
		return append([]byte(nil), args...)
	})

	// Operations-plane rider: one deliberately slow subscriber drains the
	// event bus on a ~20ms cadence for the whole soak. Flow-control churn
	// emits edge events (one per backpressure/window episode), not per-op
	// floods, so even this laggard must keep up — the bus sheds nothing.
	sub := w.SubscribeEvents()
	defer sub.Close()
	evKinds := make(map[string]int)
	drainDone := make(chan struct{})
	drainStop := make(chan struct{})
	go func() {
		defer close(drainDone)
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		var buf []gupcxx.RuntimeEvent
		for {
			select {
			case <-drainStop:
				for _, ev := range sub.Poll(buf) {
					evKinds[ev.Kind.String()]++
				}
				return
			case <-tick.C:
				for _, ev := range sub.Poll(buf) {
					evKinds[ev.Kind.String()]++
				}
			}
		}
	}()

	dur := soakSeconds()
	err = w.Run(func(r *gupcxx.Rank) {
		me, n := r.Me(), r.N()
		ptr := gupcxx.New[int64](r)
		ptrs := gupcxx.ExchangePtr(r, ptr)
		ad := gupcxx.NewAtomicDomain[int64](r)
		ctr := gupcxx.New[int64](r)
		ctrs := gupcxx.ExchangePtr(r, ctr)

		// accept records an op outcome against the soak contract: success
		// and backpressure are the only acceptable results under loss.
		fails := 0
		accept := func(what string, err error) {
			if err != nil && !errors.Is(err, gupcxx.ErrBackpressure) {
				if fails < 5 { // don't flood the log from a tight loop
					t.Errorf("rank %d: %s resolved %v, want value or ErrBackpressure", me, what, err)
				}
				fails++
			}
		}

		end := time.Now().Add(dur)
		for round := 0; time.Now().Before(end) && fails == 0; round++ {
			peer := (me + 1 + round%(n-1)) % n

			// Pipelined wire-RPC burst: more calls outstanding than the
			// window has slots, so admission must cycle between credits
			// and bounded refusal while retransmission churns underneath.
			futs := make([]gupcxx.FutureV[[]byte], 0, 12)
			for i := 0; i < 12; i++ {
				futs = append(futs, gupcxx.RPCWire(r, peer, echo, []byte{byte(round), byte(i)}))
			}
			for i, f := range futs {
				got, werr := f.WaitErr()
				accept("wire RPC", werr)
				if werr == nil && (len(got) != 2 || got[0] != byte(round) || got[1] != byte(i)) {
					t.Errorf("rank %d: echo corrupted: % x", me, got)
					fails++
				}
			}

			// One RMA round trip and one remote atomic per round.
			res := gupcxx.Rput(r, int64(round), ptrs[peer], gupcxx.OpFuture())
			accept("rput", res.Op.WaitErr())
			_, gerr := gupcxx.Rget(r, ptrs[peer]).WaitErr()
			accept("rget", gerr)
			accept("atomic add", ad.Add(ctrs[peer], 1).Op.WaitErr())

			// Closure RPC still consults admission toward the peer.
			accept("closure RPC", gupcxx.RPC(r, peer, func(*gupcxx.Rank) {}).WaitErr())

			// Periodic collectives keep the all-to-all paths in the mix.
			if round%64 == 63 {
				if sum := r.SumU64(1); sum != uint64(n) {
					t.Errorf("rank %d: SumU64(1) = %d over %d ranks", me, sum, n)
					fails++
				}
			}
		}
		// Converge before teardown: a rank that errored out early still
		// participates so its peers' final collective cannot wedge.
		r.Barrier()
		if v := gupcxx.Rget(r, ctr).Wait(); v < 0 {
			t.Errorf("rank %d: counter went negative: %d", me, v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	close(drainStop)
	<-drainDone
	if d := sub.Dropped(); d != 0 {
		t.Errorf("slow event subscriber shed %d events during the soak", d)
	}
	evTotal := 0
	for _, n := range evKinds {
		evTotal += n
	}
	t.Logf("soak events: %d drained by the slow subscriber, by kind: %v", evTotal, evKinds)
	st := w.Domain().Stats()
	if st.Retransmits == 0 {
		t.Error("soak saw zero retransmits: the loss profile was not applied")
	}
	t.Logf("soak %v: retransmits=%d rtoExpirations=%d windowShrinks=%d windowGrows=%d backpressureFails=%d shedBytes=%d",
		dur, st.Retransmits, st.RTOExpirations, st.WindowShrinks, st.WindowGrows,
		st.BackpressureFails, st.ShedBytes)
}
