package gupcxx_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gupcxx"
)

// chokedConfig builds a 2-rank UDP world whose rank-1 outbound path will
// be killed (acks never return), so rank 0's send window toward it fills
// and stays full. On the UDP conduit every rank shares one node, so RMA
// and atomics short-circuit through shared memory; wire RPC is the op
// family that actually crosses the socket, and the one these tests choke.
func chokedConfig(policy gupcxx.BackpressurePolicy, wait time.Duration) gupcxx.Config {
	return gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.UDP, SegmentBytes: 1 << 12,
		Fault:            &gupcxx.FaultConfig{}, // shield from any GUPCXX_UDP_FAULT preset
		RelWindow:        4,
		RelWindowMin:     4, // hold the AIMD floor at the ceiling: occupancy stays deterministic
		Backpressure:     policy,
		BackpressureWait: wait,
	}
}

// TestBackpressureFailFastPolicy: with the window toward a choked (alive
// but non-acking) peer full, the next operation must resolve immediately
// with ErrBackpressure — a *BackpressureError naming the peer — instead of
// blocking inside the substrate.
func TestBackpressureFailFastPolicy(t *testing.T) {
	defer leakCheck(t)()
	w, err := gupcxx.NewWorld(chokedConfig(gupcxx.BackpressureFailFast, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	echo := w.RegisterRPC(func(r *gupcxx.Rank, args []byte) []byte {
		return append([]byte(nil), args...)
	})
	var victimMayExit atomic.Bool
	err = w.Run(func(r *gupcxx.Rank) {
		if r.Me() == 1 {
			for !victimMayExit.Load() {
				r.Progress()
			}
			return
		}
		defer victimMayExit.Store(true)
		chokeAndFill(t, w, r, echo)
		fs := r.Flow(1)
		if fs.InFlight != 4 || fs.Window != 4 {
			t.Errorf("flow toward choked peer = %+v, want 4/4 occupancy", fs)
		}

		start := time.Now()
		_, werr := gupcxx.RPCWire(r, 1, echo, []byte("over")).WaitErr()
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Errorf("fail-fast refusal took %v", elapsed)
		}
		if !errors.Is(werr, gupcxx.ErrBackpressure) {
			t.Fatalf("overflow call resolved %v, want ErrBackpressure", werr)
		}
		var bpe *gupcxx.BackpressureError
		if !errors.As(werr, &bpe) || bpe.Peer != 1 {
			t.Errorf("error %v does not carry peer rank 1", werr)
		}
		// The refusal also gates closure RPC: delivery would be in-memory on
		// this conduit, but admission still answers for the overloaded peer.
		cerr := gupcxx.RPC(r, 1, func(*gupcxx.Rank) {}).WaitErr()
		if !errors.Is(cerr, gupcxx.ErrBackpressure) {
			t.Errorf("overflow closure RPC resolved %v, want ErrBackpressure", cerr)
		}
		// And the value-carrying form.
		_, verr := gupcxx.RPCCall(r, 1, func(*gupcxx.Rank) int { return 1 }).WaitErr()
		if !errors.Is(verr, gupcxx.ErrBackpressure) {
			t.Errorf("overflow RPCCall resolved %v, want ErrBackpressure", verr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Domain().Stats().BackpressureFails; got < 3 {
		t.Errorf("BackpressureFails = %d, want >= 3", got)
	}
}

// chokeAndFill drains any straggler frames toward rank 1, kills rank 1's
// outbound path (so acks stop), and fills rank 0's four-slot window with
// wire RPCs whose replies will never arrive. The abandoned futures resolve
// at World.Close; the window stays full for the duration of the test body.
func chokeAndFill(t *testing.T, w *gupcxx.World, r *gupcxx.Rank, echo gupcxx.RPCHandlerID) {
	t.Helper()
	// A collective may leave frames awaiting delayed acks; wait for the
	// stream to idle so the fill count below is exact.
	for deadline := time.Now().Add(5 * time.Second); r.Flow(1).InFlight != 0; {
		if time.Now().After(deadline) {
			t.Fatalf("stream to rank 1 never idled: %+v", r.Flow(1))
		}
		r.Progress()
	}
	if err := w.SetFault(1, gupcxx.FaultConfig{Drop: 1.0}); err != nil {
		t.Error(err)
	}
	for i := 0; i < 4; i++ {
		gupcxx.RPCWire(r, 1, echo, []byte{byte(i)})
	}
}

// TestBackpressureBoundedBlock: the default policy parks the initiation
// for Config.BackpressureWait hoping for a credit, then fails with
// ErrBackpressure — bounded, never a wedge.
func TestBackpressureBoundedBlock(t *testing.T) {
	defer leakCheck(t)()
	w, err := gupcxx.NewWorld(chokedConfig(gupcxx.BackpressureBlock, 60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	echo := w.RegisterRPC(func(r *gupcxx.Rank, args []byte) []byte {
		return append([]byte(nil), args...)
	})
	var victimMayExit atomic.Bool
	err = w.Run(func(r *gupcxx.Rank) {
		if r.Me() == 1 {
			for !victimMayExit.Load() {
				r.Progress()
			}
			return
		}
		defer victimMayExit.Store(true)
		chokeAndFill(t, w, r, echo)
		start := time.Now()
		_, werr := gupcxx.RPCWire(r, 1, echo, []byte("over")).WaitErr()
		elapsed := time.Since(start)
		if !errors.Is(werr, gupcxx.ErrBackpressure) {
			t.Fatalf("blocked call resolved %v, want ErrBackpressure", werr)
		}
		if elapsed < 40*time.Millisecond {
			t.Errorf("admission blocked only %v, want about the 60ms bound", elapsed)
		}
		if elapsed > 5*time.Second {
			t.Errorf("admission blocked %v, far past the bound", elapsed)
		}
		// A caller deadline tighter than the policy bound wins: the wait is
		// min(BackpressureWait, remaining budget).
		start = time.Now()
		_, derr := gupcxx.RPCWire(r, 1, echo, []byte("d"),
			gupcxx.OpDeadline(5*time.Millisecond)).WaitErr()
		if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
			t.Errorf("deadline-bounded admission blocked %v, want about 5ms", elapsed)
		}
		if derr == nil {
			t.Error("deadline-bounded overflow call resolved nil, want an error")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFlowAccessor: Rank.Flow exposes the adaptive flow state — a live
// RTT estimate and a healthy window after acked wire traffic, and the
// zero snapshot for self and out-of-range ranks.
func TestFlowAccessor(t *testing.T) {
	defer leakCheck(t)()
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks: 2, Conduit: gupcxx.UDP, SegmentBytes: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	echo := w.RegisterRPC(func(r *gupcxx.Rank, args []byte) []byte {
		return append([]byte(nil), args...)
	})
	err = w.Run(func(r *gupcxx.Rank) {
		peer := (r.Me() + 1) % r.N()
		for i := 0; i < 32; i++ {
			if _, werr := gupcxx.RPCWire(r, peer, echo, []byte{byte(i)}).WaitErr(); werr != nil {
				t.Fatalf("rank %d: echo %d failed: %v", r.Me(), i, werr)
			}
		}
		fs := r.Flow(peer)
		if fs.Window <= 0 {
			t.Errorf("rank %d: window %d after healthy traffic", r.Me(), fs.Window)
		}
		if fs.SRTT <= 0 || fs.RTO <= 0 {
			t.Errorf("rank %d: estimator empty after 32 acked round trips: %+v", r.Me(), fs)
		}
		if fs.RTO < fs.SRTT {
			t.Errorf("rank %d: RTO %v below SRTT %v", r.Me(), fs.RTO, fs.SRTT)
		}
		if self := r.Flow(r.Me()); self != (gupcxx.FlowState{}) {
			t.Errorf("self flow state = %+v, want zero", self)
		}
		if oob := r.Flow(99); oob != (gupcxx.FlowState{}) {
			t.Errorf("out-of-range flow state = %+v, want zero", oob)
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineErrorMatchesContext pins the stdlib interoperability of the
// deadline sentinel: code written against context.DeadlineExceeded (and
// net-style Timeout() classification) recognizes our failures unchanged.
func TestDeadlineErrorMatchesContext(t *testing.T) {
	if !errors.Is(gupcxx.ErrDeadlineExceeded, context.DeadlineExceeded) {
		t.Error("ErrDeadlineExceeded does not match context.DeadlineExceeded under errors.Is")
	}
	var to interface{ Timeout() bool }
	if !errors.As(gupcxx.ErrDeadlineExceeded, &to) || !to.Timeout() {
		t.Error("ErrDeadlineExceeded does not classify as a timeout")
	}
	// It is still its own sentinel, not context.DeadlineExceeded itself.
	if errors.Is(context.DeadlineExceeded, gupcxx.ErrDeadlineExceeded) {
		t.Error("matching must be one-directional (ours → stdlib)")
	}
}

// TestBackpressureErrorTyping pins the public error taxonomy without a
// world: the typed error matches the sentinel class and exposes the rank.
func TestBackpressureErrorTyping(t *testing.T) {
	err := error(&gupcxx.BackpressureError{Peer: 3})
	if !errors.Is(err, gupcxx.ErrBackpressure) {
		t.Error("*BackpressureError does not match ErrBackpressure")
	}
	var bpe *gupcxx.BackpressureError
	if !errors.As(err, &bpe) || bpe.Peer != 3 {
		t.Errorf("errors.As lost the peer rank: %+v", bpe)
	}
	if errors.Is(err, gupcxx.ErrPeerUnreachable) {
		t.Error("backpressure must not classify as unreachability: the peer is alive")
	}
}
