package gupcxx_test

import (
	"math"
	"testing"

	"gupcxx"
)

func TestFloatAtomics(t *testing.T) {
	for _, conduit := range []gupcxx.Conduit{gupcxx.PSHM, gupcxx.SIM} {
		cfg := gupcxx.Config{Ranks: 2, Conduit: conduit, SegmentBytes: 1 << 14}
		err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
			p := gupcxx.New[float64](r)
			*p.Local(r) = 0
			ptrs := gupcxx.ExchangePtr(r, p)
			r.Barrier()
			if r.Me() == 0 {
				ad := gupcxx.NewAtomicDomainF64(r)
				tgt := ptrs[1]
				ad.Store(tgt, 1.5).Wait()
				if v := ad.Load(tgt).Wait(); v != 1.5 {
					t.Errorf("%v: load = %v", conduit, v)
				}
				if old := ad.FetchAdd(tgt, 0.25).Wait(); old != 1.5 {
					t.Errorf("%v: fetchadd old = %v", conduit, old)
				}
				ad.Add(tgt, 0.25).Wait()
				if v := ad.Load(tgt).Wait(); v != 2.0 {
					t.Errorf("%v: after adds = %v", conduit, v)
				}
				ad.Min(tgt, 1.0).Wait()
				ad.Max(tgt, 0.5).Wait() // no effect: 1.0 > 0.5
				if v := ad.Load(tgt).Wait(); v != 1.0 {
					t.Errorf("%v: after min/max = %v", conduit, v)
				}
				if old := ad.FetchMax(tgt, 7.5).Wait(); old != 1.0 {
					t.Errorf("%v: fetchmax old = %v", conduit, old)
				}
				if old := ad.FetchMin(tgt, -1).Wait(); old != 7.5 {
					t.Errorf("%v: fetchmin old = %v", conduit, old)
				}
			}
			r.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestFloatAtomicContention: concurrent float adds from all ranks sum
// exactly (each addend is exactly representable, so the result is
// order-independent).
func TestFloatAtomicContention(t *testing.T) {
	const perRank = 500
	cfg := gupcxx.Config{Ranks: 4, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 16}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		acc := gupcxx.New[float64](r)
		*acc.Local(r) = 0
		ptrs := gupcxx.ExchangePtr(r, acc)
		r.Barrier()
		ad := gupcxx.NewAtomicDomainF64(r)
		for i := 0; i < perRank; i++ {
			ad.Add(ptrs[0], 0.5).Wait()
		}
		r.Barrier()
		if r.Me() == 0 {
			want := 0.5 * perRank * float64(r.N())
			if got := ad.Load(ptrs[0]).Wait(); got != want {
				t.Errorf("sum = %v, want %v", got, want)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFloatAtomicEagerReadiness: the completion rules carry over to the
// float domain.
func TestFloatAtomicEagerReadiness(t *testing.T) {
	check := func(ver gupcxx.Version, want bool) {
		cfg := gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, Version: ver, SegmentBytes: 1 << 12}
		err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
			p := gupcxx.New[float64](r)
			ptrs := gupcxx.ExchangePtr(r, p)
			r.Barrier()
			if r.Me() == 0 {
				ad := gupcxx.NewAtomicDomainF64(r)
				res := ad.Add(ptrs[1], 1)
				if res.Op.Ready() != want {
					t.Errorf("%s: ready=%v want %v", ver.Name, res.Op.Ready(), want)
				}
				res.Wait()
			}
			r.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	check(gupcxx.Eager2021_3_6, true)
	check(gupcxx.Defer2021_3_6, false)
}

func TestFloatAtomicSpecialValues(t *testing.T) {
	err := gupcxx.Launch(gupcxx.Config{Ranks: 1, SegmentBytes: 1 << 12}, func(r *gupcxx.Rank) {
		p := gupcxx.New[float64](r)
		ad := gupcxx.NewAtomicDomainF64(r)
		ad.Store(p, math.Inf(-1)).Wait()
		ad.Max(p, -1e300).Wait()
		if v := ad.Load(p).Wait(); v != -1e300 {
			t.Errorf("max over -inf = %v", v)
		}
		ad.Add(p, math.Inf(1)).Wait()
		if v := ad.Load(p).Wait(); !math.IsInf(v, 1) {
			t.Errorf("add inf = %v", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
