//go:build race

package gupcxx_test

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
