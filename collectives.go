package gupcxx

import (
	"encoding/binary"
	"fmt"

	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
)

// Collectives over the world: barrier, broadcast, exchange (allgather),
// and reductions. These are SPMD-synchronous conveniences built on active
// messages; every rank must call each collective in the same order (the
// usual single-phase matching rule). They are not on the paper's measured
// paths — the applications use them for setup — so the implementation
// favours clarity: a dissemination barrier and linear broadcast/gather.
//
// Each primitive collective (barrier, broadcast, exchange — world and
// team) runs through the unified pipeline as one OpColl operation whose
// data movement is the blocking protocol itself: no completion requests,
// so the pipeline books it as initiated and eagerly completed, and the
// per-family counters surface collective activity alongside the other
// families. Composed collectives (reductions, ExchangePtr) count through
// the primitives they invoke.

// collOp runs one blocking collective protocol through the unified
// pipeline.
func collOp(r *Rank, protocol func()) {
	r.eng.Initiate(core.OpDesc{Kind: core.OpColl, Local: true, Move: protocol}, nil)
}

// collective op kinds, carried in Msg.A1.
const (
	collBarrier uint64 = iota
	collBcast
	collGather
)

// collKey identifies one collective sub-step on the receiving rank.
type collKey struct {
	kind  uint64
	seq   uint64
	round uint32
}

// collState is a rank's collective matching table. It is mutated only on
// the owning rank's goroutine (the AM handler runs during its Poll).
type collState struct {
	inbox      map[collKey][]gasnet.Msg
	barrierSeq uint64
	bcastSeq   uint64
	gatherSeq  uint64
}

func newCollState() *collState {
	return &collState{inbox: make(map[collKey][]gasnet.Msg)}
}

// handleColl files an inbound collective message under its key.
func handleColl(ep *gasnet.Endpoint, m *gasnet.Msg) {
	r := rankOf(ep)
	k := collKey{kind: m.A1, seq: m.A2, round: uint32(m.A3)}
	if m.A1 == collGather {
		// World-gather messages carry the contribution's origin rank in
		// A3, not a round number; they all match under round 0. Team
		// collectives use disjoint kinds (team.key), so this cannot
		// misfile a team message.
		k.round = 0
	}
	// Payload slices from cross-node delivery alias the wire buffer, which
	// the queue owns only until the next drain; copy for safekeeping.
	if len(m.Payload) > 0 {
		p := make([]byte, len(m.Payload))
		copy(p, m.Payload)
		m.Payload = p
	}
	r.coll.inbox[k] = append(r.coll.inbox[k], *m)
}

// waitColl spins progress until at least n messages are filed under k,
// then removes and returns them. waitingOn reports the world ranks whose
// tokens this wait still depends on (evaluated lazily — only consulted
// when a peer is down and the wait is unsatisfied): a collective cannot
// outlive the participants it depends on, so if one of THOSE ranks is
// declared down the rank aborts (unwound by Run into an error wrapping
// ErrPeerUnreachable) instead of spinning forever on tokens that will
// never arrive. A down rank the wait does NOT depend on is no reason to
// abort: dissemination and tree protocols are asymmetric, so a peer can
// legally complete the final collective and depart this world while we
// are still mid-protocol waiting on somebody else. (If our wait depends
// on the departed rank only transitively, the rank we depend on directly
// observes the death as its own direct dependency and aborts; its
// departure then surfaces here as a direct dependency on a down rank —
// aborts cascade along the token chain.)
func (r *Rank) waitColl(k collKey, n int, waitingOn func() []int) []gasnet.Msg {
	r.spinWait(func() bool {
		if len(r.coll.inbox[k]) >= n {
			return true
		}
		if r.ep.AnyPeerDown() {
			// The down flag is raised asynchronously (goodbye frames and
			// liveness sweeps run on the transport's goroutines), so it can
			// become visible while tokens the departed peer sent BEFORE
			// leaving still sit undelivered in the poll queue. A graceful
			// departure drains its sends before announcing itself (see
			// World.drainWire), so those tokens are already local: drain
			// progress to idle and re-check before concluding the
			// collective is torn.
			for r.Progress() > 0 {
			}
			if len(r.coll.inbox[k]) >= n {
				return true
			}
			for _, dep := range waitingOn() {
				if r.ep.PeerDown(dep) {
					abortRank(fmt.Errorf("collective aborted, rank(s) %v unreachable: %w",
						r.ep.DownPeers(), ErrPeerUnreachable))
				}
			}
		}
		return false
	})
	msgs := r.coll.inbox[k]
	delete(r.coll.inbox, k)
	return msgs
}

// depOn returns a waitingOn callback for a wait with one fixed
// dependency.
func depOn(rank int) func() []int {
	return func() []int { return []int{rank} }
}

// Barrier blocks until every rank has entered the barrier, driving the
// progress engine while waiting (a dissemination barrier: ceil(log2 N)
// rounds of token exchange).
func (r *Rank) Barrier() {
	collOp(r, r.barrier)
}

func (r *Rank) barrier() {
	n := r.N()
	seq := r.coll.barrierSeq
	r.coll.barrierSeq++
	if n == 1 {
		return
	}
	me := r.Me()
	for k, dist := 0, 1; dist < n; k, dist = k+1, dist*2 {
		peer := (me + dist) % n
		r.ep.Send(peer, gasnet.Msg{
			Handler: hColl,
			A1:      collBarrier,
			A2:      seq,
			A3:      uint64(k),
		})
		// This round's token comes from the mirror-image peer.
		r.waitColl(collKey{collBarrier, seq, uint32(k)}, 1, depOn((me-dist+n)%n))
	}
}

// BroadcastBytes distributes data from the root rank to all ranks,
// returning each rank's copy. Non-root ranks ignore their data argument.
func (r *Rank) BroadcastBytes(root int, data []byte) []byte {
	var out []byte
	collOp(r, func() { out = r.broadcastBytes(root, data) })
	return out
}

func (r *Rank) broadcastBytes(root int, data []byte) []byte {
	seq := r.coll.bcastSeq
	r.coll.bcastSeq++
	if r.N() == 1 {
		return data
	}
	if r.Me() == root {
		for t := 0; t < r.N(); t++ {
			if t == root {
				continue
			}
			r.ep.Send(t, gasnet.Msg{
				Handler: hColl,
				A1:      collBcast,
				A2:      seq,
				Payload: data,
			})
		}
		return data
	}
	msgs := r.waitColl(collKey{collBcast, seq, 0}, 1, depOn(root))
	return msgs[0].Payload
}

// BroadcastU64 distributes one word from the root rank to all ranks.
func (r *Rank) BroadcastU64(root int, v uint64) uint64 {
	var out uint64
	collOp(r, func() { out = r.broadcastU64(root, v) })
	return out
}

func (r *Rank) broadcastU64(root int, v uint64) uint64 {
	seq := r.coll.bcastSeq
	r.coll.bcastSeq++
	if r.N() == 1 {
		return v
	}
	if r.Me() == root {
		for t := 0; t < r.N(); t++ {
			if t == root {
				continue
			}
			r.ep.Send(t, gasnet.Msg{Handler: hColl, A1: collBcast, A2: seq, A3: 0, A0: v})
		}
		return v
	}
	msgs := r.waitColl(collKey{collBcast, seq, 0}, 1, depOn(root))
	return msgs[0].A0
}

// ExchangeU64 performs an allgather of one word per rank: the result's
// i'th element is rank i's contribution. Every rank receives the full
// vector.
//
// Contributions climb a binomial tree rooted at rank 0 (each message
// carries its origin rank in A3); an interior vertex forwards its whole
// subtree to its parent inside one injection burst, so on the UDP conduit
// the fan-in coalesces into O(log N) datagrams per vertex instead of one
// per contribution. The root then broadcasts the packed vector. Versus the
// previous all-to-all this is O(N log N) messages rather than O(N²), and
// it is the substrate's showcase for sender-side coalescing (the burst to
// a common parent is exactly the pattern coalescing accelerates).
func (r *Rank) ExchangeU64(v uint64) []uint64 {
	var out []uint64
	collOp(r, func() { out = r.exchangeU64(v) })
	return out
}

func (r *Rank) exchangeU64(v uint64) []uint64 {
	n := r.N()
	seq := r.coll.gatherSeq
	r.coll.gatherSeq++
	out := make([]uint64, n)
	me := r.Me()
	out[me] = v
	if n == 1 {
		return out
	}

	// span is the width of me's subtree: ranks [me, me+span) ∩ [0, n).
	// For the root it is n; otherwise the lowest set bit of me.
	span := n
	if me != 0 {
		span = me & -me
	}
	expect := min(me+span, n) - me - 1

	// Gather the subtree's contributions (origin, value), own first.
	origins := make([]int, 1, expect+1)
	values := make([]uint64, 1, expect+1)
	origins[0], values[0] = me, v
	if expect > 0 {
		// The wait's direct dependencies are the children whose subtree
		// still has a contribution outstanding: every message physically
		// arrives from a direct child (subtrees are forwarded whole), so a
		// child whose range is complete no longer matters to this wait even
		// if it has since departed.
		key := collKey{collGather, seq, 0}
		deps := func() []int {
			seen := make(map[int]bool, len(r.coll.inbox[key]))
			for _, m := range r.coll.inbox[key] {
				seen[int(m.A3)] = true
			}
			var missing []int
			for d := 1; d < span; d *= 2 {
				c := me + d
				if c >= n {
					break
				}
				for o := c; o < min(c+d, n); o++ {
					if !seen[o] {
						missing = append(missing, c)
						break
					}
				}
			}
			return missing
		}
		msgs := r.waitColl(key, expect, deps)
		seen := make(map[uint64]bool, len(msgs))
		for _, m := range msgs {
			origin := m.A3
			if int(origin) >= n {
				panic(fmt.Sprintf("gupcxx: allgather contribution from out-of-range rank %d", origin))
			}
			if seen[origin] {
				panic(fmt.Sprintf("gupcxx: duplicate allgather contribution from rank %d", origin))
			}
			seen[origin] = true
			origins = append(origins, int(origin))
			values = append(values, m.A0)
		}
	}

	if me != 0 {
		// Forward the whole subtree to the parent in one burst: on the
		// UDP conduit these pack into a single datagram.
		parent := me - span
		r.ep.BeginBurst()
		for i := range origins {
			r.ep.Send(parent, gasnet.Msg{
				Handler: hColl,
				A1:      collGather,
				A2:      seq,
				A0:      values[i],
				A3:      uint64(origins[i]),
			})
		}
		r.ep.EndBurst()
	} else {
		for i := range origins {
			out[origins[i]] = values[i]
		}
	}

	// Root broadcasts the packed vector; everyone decodes it.
	var packed []byte
	if me == 0 {
		packed = make([]byte, 8*n)
		for i, w := range out {
			binary.LittleEndian.PutUint64(packed[8*i:], w)
		}
	}
	// Call the protocol directly: the broadcast leg is part of this one
	// allgather operation, not a second OpColl initiation.
	packed = r.broadcastBytes(0, packed)
	if me != 0 {
		for i := range out {
			out[i] = binary.LittleEndian.Uint64(packed[8*i:])
		}
	}
	return out
}

// ExchangePtr performs an allgather of one global pointer per rank: the
// standard idiom for publishing each rank's allocation to all peers. The
// pointers travel in the wire encoding (EncodePtr), so the exchange works
// identically whether the peers share this address space or not; a word
// that fails decode-side validation — a stale epoch's pointer, a
// corrupted frame — aborts the rank with the decode error rather than
// materializing a pointer into the wrong memory.
func ExchangePtr[T any](r *Rank, p GlobalPtr[T]) []GlobalPtr[T] {
	words := r.ExchangeU64(EncodePtr(r, p))
	out := make([]GlobalPtr[T], len(words))
	for i, w := range words {
		dp, err := DecodePtr[T](r, w)
		if err != nil {
			abortRank(fmt.Errorf("gupcxx: ExchangePtr word from rank %d: %w", i, err))
		}
		out[i] = dp
	}
	return out
}

// ReduceU64 combines one word from every rank with op (which must be
// associative and commutative) and returns the result on every rank — an
// allreduce.
func (r *Rank) ReduceU64(v uint64, op func(a, b uint64) uint64) uint64 {
	words := r.ExchangeU64(v)
	acc := words[0]
	for _, w := range words[1:] {
		acc = op(acc, w)
	}
	return acc
}

// SumU64 returns the sum over all ranks of v.
func (r *Rank) SumU64(v uint64) uint64 {
	return r.ReduceU64(v, func(a, b uint64) uint64 { return a + b })
}

// MaxU64 returns the maximum over all ranks of v.
func (r *Rank) MaxU64(v uint64) uint64 {
	return r.ReduceU64(v, func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	})
}

// MinU64 returns the minimum over all ranks of v.
func (r *Rank) MinU64(v uint64) uint64 {
	return r.ReduceU64(v, func(a, b uint64) uint64 {
		if a < b {
			return a
		}
		return b
	})
}
