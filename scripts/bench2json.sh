#!/bin/sh
# Convert `go test -bench` output on stdin into a JSON array of samples.
exec awk '
BEGIN { print "["; first = 1 }
/^(goos|goarch|pkg|cpu):/ {
    key = substr($1, 1, length($1) - 1)
    $1 = ""; sub(/^ /, "")
    meta[key] = $0
    next
}
/^Benchmark/ {
    if (!first) printf ",\n"
    first = 0
    printf "  {\"pkg\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", meta["pkg"], $1, $2, $3
    for (i = 5; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { print "\n]" }
'
