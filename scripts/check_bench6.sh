#!/bin/sh
# Operations-plane overhead gate for BENCH_6.json:
#   - the Observed rows (metrics listener bound, mirrors flushing, nil
#     phase hook) and the Sampled rows (latency hook installed) must
#     stay allocation-free — the plane may not touch the 0-allocs/op
#     eager contract;
#   - the geomean latency ratio of the Observed rows over the unobserved
#     eager baseline rows (BenchmarkOpPipeline/<fam>/2021.3.6-eager)
#     must stay under 1.03: a world nobody is watching pays < 3%.
set -e
rec="${1:-BENCH_6.json}"
awk '
function allocs() { return substr($0, RSTART + 17, RLENGTH - 17) + 0 }
function ns() { match($0, /"ns_per_op": [0-9.]+/); return substr($0, RSTART + 13, RLENGTH - 13) + 0 }
function fam() { match($0, /\/(getbulk|fetchadd|put|get)[\/"-]/); return substr($0, RSTART + 1, RLENGTH - 2) }
/"name": "BenchmarkOpPipeline(Observed|Sampled)\/(put|get|getbulk|fetchadd)["-]/ {
    if (match($0, /"allocs_per_op": [0-9]+/) && allocs() != 0) {
        print "check_bench6: allocation contract regressed: " $0 > "/dev/stderr"
        bad = 1
    }
}
/"name": "BenchmarkOpPipeline\/(put|get|getbulk|fetchadd)\/2021.3.6-eager/ {
    base_ns[fam()] += ns(); base_n[fam()]++
}
/"name": "BenchmarkOpPipelineObserved\/(put|get|getbulk|fetchadd)["-]/ {
    obs_ns[fam()] += ns(); obs_n[fam()]++
}
END {
    families = 0; logsum = 0
    for (f in base_n) {
        if (!(f in obs_n)) {
            print "check_bench6: no Observed rows for family " f > "/dev/stderr"
            bad = 1
            continue
        }
        logsum += log((obs_ns[f] / obs_n[f]) / (base_ns[f] / base_n[f]))
        families++
    }
    if (families < 4) {
        print "check_bench6: expected 4 observed families, saw " families > "/dev/stderr"
        bad = 1
    } else {
        geo = exp(logsum / families)
        printf "check_bench6: nil-observer geomean overhead ratio %.4f (limit 1.03)\n", geo
        if (geo > 1.03) {
            print "check_bench6: observed eager path exceeds the 3% overhead budget" > "/dev/stderr"
            bad = 1
        }
    }
    exit bad
}' "$rec"
echo "check_bench6: $rec ok (observed+sampled rows 0 allocs, nil-observer overhead < 3%)"
