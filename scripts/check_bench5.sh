#!/bin/sh
# Assert the vectorized-datapath + continuation record preserves the
# allocation claims of the zero-syscall-amortized datapath:
#   - the eager on-node rows stay allocation-free (the BENCH_3/4 gate,
#     re-asserted so this record cannot regress what those pinned);
#   - the asynchronous continuation forms (put/cont, getbulk/cont) run
#     cell-free: 0 allocs/op where the future form pays its one cell;
#   - the pooled wire-RPC continuation row stays within its 2-alloc
#     budget (args copy + reply view; steady state records 0).
set -e
rec="${1:-BENCH_5.json}"
bad=$(awk '
function allocs() { return substr($0, RSTART + 17, RLENGTH - 17) + 0 }
/"name": "BenchmarkOpPipeline\/(put|get|getbulk|fetchadd)\/2021.3.6-eager/ {
    if (match($0, /"allocs_per_op": [0-9]+/) && allocs() != 0) print
}
/"name": "BenchmarkOpPipelineAsync\/(put|getbulk)\/cont"/ {
    if (match($0, /"allocs_per_op": [0-9]+/) && allocs() != 0) print
}
/"name": "BenchmarkOpPipelineAsync\/rpcwire\/cont"/ {
    if (match($0, /"allocs_per_op": [0-9]+/) && allocs() > 2) print
}' "$rec")
if [ -n "$bad" ]; then
    echo "check_bench5: allocation contract regressed:" >&2
    echo "$bad" >&2
    exit 1
fi
echo "check_bench5: $rec ok (eager rows 0, continuation rows 0, rpcwire/cont <= 2)"
