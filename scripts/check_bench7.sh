#!/bin/sh
# Assert the multiproc record preserves the single-process contract and
# actually crossed a process boundary:
#   - the in-process UDP world's eager rows stay allocation-free — the
#     process-per-rank refactor (segment-relative gptrs, wire-encodable
#     op families, drain-then-bye teardown) may not tax the co-located
#     fast path the BENCH_3/5 gates pinned;
#   - all four cross-process families are present, each with a non-zero
#     iteration count — the record cannot silently degrade to the
#     in-process harness. Their ns_per_op is a loopback round trip
#     through the reliability layer and is machine-dependent, so only
#     presence is gated, not latency.
set -e
rec="${1:-BENCH_7.json}"
bad=$(awk '
function allocs() { return substr($0, RSTART + 17, RLENGTH - 17) + 0 }
/"name": "BenchmarkOpPipelineUDP\/(put|get|getbulk|fetchadd)\/2021.3.6-eager/ {
    if (match($0, /"allocs_per_op": [0-9]+/) && allocs() != 0) print
}' "$rec")
if [ -n "$bad" ]; then
    echo "check_bench7: in-process eager rows must stay at 0 allocs/op:" >&2
    echo "$bad" >&2
    exit 1
fi
for fam in put get getbulk fetchadd; do
    if ! grep -q "\"name\": \"BenchmarkOpPipelineMultiproc/$fam\", \"iterations\": [1-9]" "$rec"; then
        echo "check_bench7: missing cross-process row for family $fam" >&2
        exit 1
    fi
done
echo "check_bench7: $rec ok (UDP eager rows 0 allocs/op, 4 cross-process families recorded)"
