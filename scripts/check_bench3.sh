#!/bin/sh
# Assert the pipeline benchmark record preserves the allocation claims:
# under the eager version, value-less ops (put, getbulk) and inline-value
# ops (get, fetchadd) must report 0 allocs/op — the BENCH_1-era guarantee
# the unified pipeline must not regress.
set -e
rec="${1:-BENCH_3.json}"
bad=$(awk '
/"name": "BenchmarkOpPipeline\/(put|get|getbulk|fetchadd)\/2021.3.6-eager/ {
    if (match($0, /"allocs_per_op": [0-9]+/)) {
        n = substr($0, RSTART + 17, RLENGTH - 17)
        if (n + 0 != 0) print
    }
}' "$rec")
if [ -n "$bad" ]; then
    echo "check_bench3: eager rows regressed to allocating:" >&2
    echo "$bad" >&2
    exit 1
fi
echo "check_bench3: $rec ok (eager rows allocation-free)"
