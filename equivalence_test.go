package gupcxx_test

// Version-equivalence property: the three library versions differ only in
// WHEN completion notifications are delivered and what bookkeeping they
// allocate — never in data movement. Any program whose result is
// deterministic under a fixed issue order must therefore leave byte-
// identical global memory under Legacy2021_3_0, Defer2021_3_6, and
// Eager2021_3_6. This test generates random such programs and checks it.

import (
	"math/rand"
	"testing"

	"gupcxx"
)

const (
	eqRanks = 3
	eqWords = 64 // words per rank
)

// eqOp is one step of a generated program.
type eqOp struct {
	kind   int // 0 put, 1 get-check, 2 amo add, 3 amo xor, 4 fetchadd, 5 bulk put, 6 strided put, 7 cas
	target int
	off    int
	val    uint64
	n      int // bulk length / strided rows
	sync   int // 0 future-wait, 1 promise batch boundary, 2 conjoin
}

// genProgram builds a deterministic random program.
func genProgram(seed int64, steps int) []eqOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]eqOp, steps)
	for i := range ops {
		ops[i] = eqOp{
			kind:   rng.Intn(8),
			target: rng.Intn(eqRanks),
			off:    rng.Intn(eqWords),
			val:    rng.Uint64(),
			n:      rng.Intn(5) + 1,
			sync:   rng.Intn(3),
		}
	}
	return ops
}

// runProgram executes the program on rank 0 of a world under ver and
// returns the final contents of every rank's table.
func runProgram(t *testing.T, ver gupcxx.Version, conduit gupcxx.Conduit, ops []eqOp) [][]uint64 {
	t.Helper()
	out := make([][]uint64, eqRanks)
	cfg := gupcxx.Config{
		Ranks: eqRanks, Conduit: conduit, Version: ver,
		SegmentBytes: 1 << 14, RanksPerNode: 2,
	}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		table := gupcxx.NewArray[uint64](r, eqWords)
		for i, s := 0, table.LocalSlice(r, eqWords); i < eqWords; i++ {
			s[i] = uint64(r.Me()) << 32
		}
		tables := gupcxx.ExchangePtr(r, table)
		r.Barrier()
		if r.Me() == 0 {
			ad := gupcxx.NewAtomicDomain[uint64](r)
			prom := r.NewPromise()
			promOps := 0
			conj := r.MakeFuture()
			for _, op := range ops {
				dst := tables[op.target].Element(op.off)
				var res gupcxx.Result
				issued := true
				switch op.kind {
				case 0:
					switch op.sync {
					case 1:
						gupcxx.Rput(r, op.val, dst, gupcxx.OpPromise(prom))
						promOps++
						issued = false
					default:
						res = gupcxx.Rput(r, op.val, dst)
					}
				case 1:
					// Read (value unused beyond forcing the path).
					_ = gupcxx.Rget(r, dst).Wait()
					issued = false
				case 2:
					res = ad.Add(dst, op.val)
				case 3:
					res = ad.Xor(dst, op.val)
				case 4:
					_ = ad.FetchAdd(dst, op.val).Wait()
					issued = false
				case 5:
					n := op.n
					if op.off+n > eqWords {
						n = eqWords - op.off
					}
					buf := make([]uint64, n)
					for j := range buf {
						buf[j] = op.val + uint64(j)
					}
					res = gupcxx.RputBulk(r, buf, dst)
				case 6:
					sec := gupcxx.Strided2D{Rows: 2, RunLen: 1, Stride: op.n}
					if op.off+sec.Stride+1 > eqWords {
						issued = false
						break
					}
					src := []uint64{op.val, ^op.val}
					res = gupcxx.RputStrided(r, src, dst, sec)
				case 7:
					var old uint64
					res = ad.CompareExchangeInto(dst, op.val%4, op.val, &old)
				}
				if !issued {
					continue
				}
				switch op.sync {
				case 0:
					res.Wait()
				case 2:
					conj = r.WhenAll(conj, res.Op)
				}
			}
			prom.Require(0) // no-op; exercises the path
			_ = promOps
			prom.Finalize().Wait()
			conj.Wait()
		}
		r.Barrier()
		out[r.Me()] = append([]uint64(nil), table.LocalSlice(r, eqWords)...)
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// phaseDelta is the observed phase-count change for one op family.
type phaseDelta struct {
	init, eager, deferred, acked int64
}

// TestModeResolutionMatrix pins the eager-vs-deferred resolution for
// every operation family under every library version, observed through
// the pipeline's phase counters: one co-located operation per subtest,
// and the phase row for its family must move exactly as the version's
// default (or the request's explicit mode) dictates. This is the
// table-driven proof that the three versions are knobs on one pipeline —
// the resolution happens in core.Engine.eager and nowhere else.
func TestModeResolutionMatrix(t *testing.T) {
	versions := []gupcxx.Version{gupcxx.Legacy2021_3_0, gupcxx.Defer2021_3_6, gupcxx.Eager2021_3_6}

	// byDefault is the expected delta for a co-located op with one
	// default-mode completion request.
	byDefault := func(eagerDefault bool) phaseDelta {
		if eagerDefault {
			return phaseDelta{init: 1, eager: 1}
		}
		return phaseDelta{init: 1, deferred: 1}
	}
	always := func(d phaseDelta) func(bool) phaseDelta {
		return func(bool) phaseDelta { return d }
	}

	families := []struct {
		name  string
		kind  gupcxx.OpKind
		issue func(r *gupcxx.Rank, dst gupcxx.GlobalPtr[uint64])
		want  func(eagerDefault bool) phaseDelta
	}{
		{"rma-put", gupcxx.OpRMA,
			func(r *gupcxx.Rank, dst gupcxx.GlobalPtr[uint64]) { gupcxx.Rput(r, 7, dst).Wait() },
			byDefault},
		{"rma-put-eager-cx", gupcxx.OpRMA,
			func(r *gupcxx.Rank, dst gupcxx.GlobalPtr[uint64]) {
				gupcxx.Rput(r, 7, dst, gupcxx.OpEagerFuture()).Wait()
			},
			always(phaseDelta{init: 1, eager: 1})},
		{"rma-put-defer-cx", gupcxx.OpRMA,
			func(r *gupcxx.Rank, dst gupcxx.GlobalPtr[uint64]) {
				gupcxx.Rput(r, 7, dst, gupcxx.OpDeferFuture()).Wait()
			},
			always(phaseDelta{init: 1, deferred: 1})},
		{"rma-get", gupcxx.OpRMA,
			func(r *gupcxx.Rank, dst gupcxx.GlobalPtr[uint64]) { gupcxx.Rget(r, dst).Wait() },
			byDefault},
		{"rma-get-mode-eager", gupcxx.OpRMA,
			func(r *gupcxx.Rank, dst gupcxx.GlobalPtr[uint64]) {
				gupcxx.Rget(r, dst, gupcxx.ModeEager).Wait()
			},
			always(phaseDelta{init: 1, eager: 1})},
		{"rma-get-mode-defer", gupcxx.OpRMA,
			func(r *gupcxx.Rank, dst gupcxx.GlobalPtr[uint64]) {
				gupcxx.Rget(r, dst, gupcxx.ModeDefer).Wait()
			},
			always(phaseDelta{init: 1, deferred: 1})},
		{"atomic-add", gupcxx.OpAtomic,
			func(r *gupcxx.Rank, dst gupcxx.GlobalPtr[uint64]) {
				gupcxx.NewAtomicDomain[uint64](r).Add(dst, 3).Wait()
			},
			byDefault},
		{"atomic-fetchadd", gupcxx.OpAtomic,
			func(r *gupcxx.Rank, dst gupcxx.GlobalPtr[uint64]) {
				gupcxx.NewAtomicDomain[uint64](r).FetchAdd(dst, 3).Wait()
			},
			byDefault},
		{"vis-put-strided", gupcxx.OpVIS,
			func(r *gupcxx.Rank, dst gupcxx.GlobalPtr[uint64]) {
				sec := gupcxx.Strided2D{Rows: 2, RunLen: 1, Stride: 2}
				gupcxx.RputStrided(r, []uint64{1, 2}, dst, sec).Wait()
			},
			byDefault},
		// An RPC is never co-located in the pipeline's sense: even a
		// self-RPC executes from the progress engine, so its completion is
		// always asynchronous — wire-acked, never eager or deferred.
		{"rpc-self", gupcxx.OpRPC,
			func(r *gupcxx.Rank, dst gupcxx.GlobalPtr[uint64]) {
				gupcxx.RPC(r, r.Me(), func(*gupcxx.Rank) {}).Wait()
			},
			always(phaseDelta{init: 1, acked: 1})},
		// A blocking collective requests no completions: it books
		// initiation and eager completion under every version.
		{"coll-barrier", gupcxx.OpColl,
			func(r *gupcxx.Rank, dst gupcxx.GlobalPtr[uint64]) { r.Barrier() },
			always(phaseDelta{init: 1, eager: 1})},
	}

	for _, ver := range versions {
		for _, fam := range families {
			t.Run(ver.Name+"/"+fam.name, func(t *testing.T) {
				cfg := gupcxx.Config{Ranks: 1, Conduit: gupcxx.PSHM, Version: ver, SegmentBytes: 1 << 14}
				err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
					dst := gupcxx.New[uint64](r)
					before := r.OpStats().Ops
					fam.issue(r, dst)
					after := r.OpStats().Ops
					got := phaseDelta{
						init:     after.Of(fam.kind, gupcxx.PhaseInitiated) - before.Of(fam.kind, gupcxx.PhaseInitiated),
						eager:    after.Of(fam.kind, gupcxx.PhaseEagerCompleted) - before.Of(fam.kind, gupcxx.PhaseEagerCompleted),
						deferred: after.Of(fam.kind, gupcxx.PhaseDeferredQueued) - before.Of(fam.kind, gupcxx.PhaseDeferredQueued),
						acked:    after.Of(fam.kind, gupcxx.PhaseWireAcked) - before.Of(fam.kind, gupcxx.PhaseWireAcked),
					}
					if want := fam.want(ver.EagerDefault); got != want {
						t.Errorf("%s under %s: phase delta %+v, want %+v", fam.name, ver.Name, got, want)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestVersionEquivalenceProperty(t *testing.T) {
	versions := []gupcxx.Version{gupcxx.Legacy2021_3_0, gupcxx.Defer2021_3_6, gupcxx.Eager2021_3_6}
	conduits := []gupcxx.Conduit{gupcxx.PSHM, gupcxx.SIM}
	for seed := int64(1); seed <= 6; seed++ {
		ops := genProgram(seed, 120)
		for _, conduit := range conduits {
			ref := runProgram(t, versions[0], conduit, ops)
			for _, ver := range versions[1:] {
				got := runProgram(t, ver, conduit, ops)
				for rank := range ref {
					for w := range ref[rank] {
						if got[rank][w] != ref[rank][w] {
							t.Fatalf("seed %d %v: rank %d word %d differs under %s: %#x vs %#x",
								seed, conduit, rank, w, ver.Name, got[rank][w], ref[rank][w])
						}
					}
				}
			}
		}
	}
}
