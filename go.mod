module gupcxx

go 1.24
