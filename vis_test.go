package gupcxx_test

import (
	"testing"
	"testing/quick"

	"gupcxx"
)

// visWorld runs fn on rank 0 with a 256-element array on rank 1.
func visWorld(t *testing.T, conduit gupcxx.Conduit, ver gupcxx.Version,
	fn func(r *gupcxx.Rank, arr gupcxx.GlobalPtr[int64])) {
	t.Helper()
	cfg := gupcxx.Config{Ranks: 2, Conduit: conduit, Version: ver, SegmentBytes: 1 << 16}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		arr := gupcxx.NewArray[int64](r, 256)
		for i, s := 0, arr.LocalSlice(r, 256); i < 256; i++ {
			s[i] = -1
		}
		arrs := gupcxx.ExchangePtr(r, arr)
		r.Barrier()
		if r.Me() == 0 {
			fn(r, arrs[1])
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStridedPutGetRoundTrip(t *testing.T) {
	for _, conduit := range []gupcxx.Conduit{gupcxx.PSHM, gupcxx.SIM} {
		for _, ver := range []gupcxx.Version{gupcxx.Defer2021_3_6, gupcxx.Eager2021_3_6} {
			visWorld(t, conduit, ver, func(r *gupcxx.Rank, arr gupcxx.GlobalPtr[int64]) {
				sec := gupcxx.Strided2D{Rows: 4, RunLen: 3, Stride: 10}
				src := make([]int64, sec.Elems())
				for i := range src {
					src[i] = int64(100 + i)
				}
				gupcxx.RputStrided(r, src, arr, sec).Wait()

				// Full readback: strided slots set, gaps untouched.
				full := make([]int64, 256)
				gupcxx.RgetBulk(r, arr, full).Wait()
				for row := 0; row < sec.Rows; row++ {
					for j := 0; j < sec.RunLen; j++ {
						want := int64(100 + row*sec.RunLen + j)
						if got := full[row*sec.Stride+j]; got != want {
							t.Fatalf("%v/%s: slot [%d,%d] = %d, want %d", conduit, ver.Name, row, j, got, want)
						}
					}
					for j := sec.RunLen; j < sec.Stride && row*sec.Stride+j < 256; j++ {
						if full[row*sec.Stride+j] != -1 {
							t.Fatalf("%v/%s: gap [%d,%d] clobbered", conduit, ver.Name, row, j)
						}
					}
				}

				// Strided get returns exactly what was put.
				back := make([]int64, sec.Elems())
				gupcxx.RgetStrided(r, arr, sec, back).Wait()
				for i := range back {
					if back[i] != src[i] {
						t.Fatalf("%v/%s: strided get [%d] = %d", conduit, ver.Name, i, back[i])
					}
				}
			})
		}
	}
}

func TestStridedEagerReadiness(t *testing.T) {
	visWorld(t, gupcxx.PSHM, gupcxx.Eager2021_3_6, func(r *gupcxx.Rank, arr gupcxx.GlobalPtr[int64]) {
		sec := gupcxx.Strided2D{Rows: 2, RunLen: 2, Stride: 4}
		res := gupcxx.RputStrided(r, make([]int64, 4), arr, sec)
		if !res.Op.Ready() {
			t.Error("co-located strided put should complete eagerly")
		}
	})
	visWorld(t, gupcxx.SIM, gupcxx.Eager2021_3_6, func(r *gupcxx.Rank, arr gupcxx.GlobalPtr[int64]) {
		sec := gupcxx.Strided2D{Rows: 2, RunLen: 2, Stride: 4}
		res := gupcxx.RputStrided(r, make([]int64, 4), arr, sec)
		if res.Op.Ready() {
			t.Error("cross-node strided put cannot be ready at initiation")
		}
		res.Wait()
	})
}

func TestStridedRemoteCompletionFiresOnce(t *testing.T) {
	cfg := gupcxx.Config{Ranks: 2, Conduit: gupcxx.SIM, SegmentBytes: 1 << 16}
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		arr := gupcxx.NewArray[int64](r, 64)
		count := gupcxx.New[int64](r)
		*count.Local(r) = 0
		arrs := gupcxx.ExchangePtr(r, arr)
		counts := gupcxx.ExchangePtr(r, count)
		r.Barrier()
		if r.Me() == 0 {
			sec := gupcxx.Strided2D{Rows: 5, RunLen: 2, Stride: 8}
			gupcxx.RputStrided(r, make([]int64, 10), arrs[1], sec,
				gupcxx.OpFuture(),
				gupcxx.RemoteRPCOn(func(tr *gupcxx.Rank) {
					*counts[1].Local(tr)++
				}),
			).Wait()
			// Give the remote completion a moment (it may trail the ack).
			got := gupcxx.RPCCall(r, 1, func(tr *gupcxx.Rank) int64 {
				return *counts[1].Local(tr)
			}).Wait()
			if got != 1 {
				t.Errorf("remote completion ran %d times, want 1", got)
			}
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndexedScatterGather(t *testing.T) {
	// Indexed puts/gets across BOTH ranks (mixed locality from rank 0's
	// perspective under SIM).
	for _, conduit := range []gupcxx.Conduit{gupcxx.PSHM, gupcxx.SIM} {
		cfg := gupcxx.Config{Ranks: 2, Conduit: conduit, SegmentBytes: 1 << 16}
		err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
			arr := gupcxx.NewArray[int64](r, 32)
			arrs := gupcxx.ExchangePtr(r, arr)
			r.Barrier()
			if r.Me() == 0 {
				var dsts []gupcxx.GlobalPtr[int64]
				var vals []int64
				for i := 0; i < 16; i++ {
					dsts = append(dsts, arrs[i%2].Element(i))
					vals = append(vals, int64(1000+i))
				}
				gupcxx.RputIndexed(r, vals, dsts).Wait()
				out := make([]int64, 16)
				gupcxx.RgetIndexed(r, dsts, out).Wait()
				for i, v := range out {
					if v != int64(1000+i) {
						t.Fatalf("%v: out[%d] = %d", conduit, i, v)
					}
				}
			}
			r.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestIndexedEmptyAndValidation(t *testing.T) {
	visWorld(t, gupcxx.PSHM, gupcxx.Eager2021_3_6, func(r *gupcxx.Rank, arr gupcxx.GlobalPtr[int64]) {
		res := gupcxx.RputIndexed[int64](r, nil, nil)
		if !res.Op.Ready() {
			t.Error("empty indexed put should be eagerly complete")
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("length mismatch should panic")
				}
			}()
			gupcxx.RputIndexed(r, []int64{1}, nil)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("remote cx on indexed op should panic")
				}
			}()
			gupcxx.RputIndexed(r, []int64{1}, []gupcxx.GlobalPtr[int64]{arr},
				gupcxx.RemoteRPC(func() {}))
		}()
	})
}

// TestStridedPropertyRoundTrip: random sections round-trip through
// put-strided/get-strided on a co-located target.
func TestStridedPropertyRoundTrip(t *testing.T) {
	visWorld(t, gupcxx.PSHM, gupcxx.Eager2021_3_6, func(r *gupcxx.Rank, arr gupcxx.GlobalPtr[int64]) {
		f := func(rowsRaw, runRaw, strideRaw uint8, seed int64) bool {
			rows := int(rowsRaw)%5 + 1
			runLen := int(runRaw)%4 + 1
			stride := runLen + int(strideRaw)%4
			if (rows-1)*stride+runLen > 256 {
				return true
			}
			sec := gupcxx.Strided2D{Rows: rows, RunLen: runLen, Stride: stride}
			src := make([]int64, sec.Elems())
			for i := range src {
				src[i] = seed + int64(i)
			}
			gupcxx.RputStrided(r, src, arr, sec).Wait()
			back := make([]int64, sec.Elems())
			gupcxx.RgetStrided(r, arr, sec, back).Wait()
			for i := range back {
				if back[i] != src[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
}
