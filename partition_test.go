package gupcxx_test

// The split-brain fault suite: a 4-rank process-per-rank world cut into
// two halves by the scenario engine (GUPCXX_UDP_SCENARIO), held apart
// long past DownAfter, then healed. During the cut, operations toward the
// severed half must fail fast and typed — ErrPeerUnreachable, a deadline,
// or backpressure — never hang; intra-group traffic must be untouched.
// After the heal, every severed pair must return to Alive under the SAME
// incarnation (healed, not readmitted) and carry RMA and RPC traffic in
// both directions. A second test pins the Config.DisableHealing kill
// switch: the identical scenario leaves the cut pairs terminally Down.
// Run via `make test-partition` (wired into CI) or the ordinary test run.

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gupcxx"
	"gupcxx/internal/boot"
)

// disableHealEnv tells the workers to set Config.DisableHealing, so the
// kill-switch test reuses the same worker binary.
const disableHealEnv = "GUPCXX_TEST_DISABLE_HEAL"

// partitionScenario is the per-rank body of TestMultiprocPartition (and,
// with terminal set, TestMultiprocPartitionHealingDisabled). The world is
// split down the middle by the scenario script; each rank watches its two
// cross-group peers go Down and — unless healing is disabled — come back
// under the same incarnation.
func partitionScenario(w *gupcxx.World, r *gupcxx.Rank, echo, mark gupcxx.RPCHandlerID, marks *atomic.Int64, terminal bool) {
	me, n := r.Me(), r.N() // 4 ranks, scenario groups {0,1} | {2,3}
	inGroup := me ^ 1
	var cross []int
	for p := 0; p < n; p++ {
		if (p >= n/2) != (me >= n/2) {
			cross = append(cross, p)
		}
	}
	dom := w.Domain()

	// Healthy start: exchange pointers for the post-heal RMA check, prove
	// every cross link carries traffic, and record the incarnations a heal
	// must preserve.
	word := gupcxx.New[uint64](r)
	words := gupcxx.ExchangePtr(r, word)
	r.Barrier()
	for _, p := range cross {
		mustEcho(r, p, echo, 60*time.Second)
	}
	crossInc := make(map[int]uint32, len(cross))
	for _, p := range cross {
		crossInc[p] = dom.IncarnationOf(me, p)
		if crossInc[p] == 0 {
			panic(fmt.Sprintf("rank %d has no recorded incarnation for peer %d after traffic", me, p))
		}
	}
	fmt.Printf("WORKER_READY rank=%d\n", me)

	// The scenario severs the groups. Keep cross-directed traffic flowing
	// while waiting for this side to declare both cross peers down: every
	// failure must be fast and typed, never a hang. The Stats counter is
	// the sticky signal — a rank delayed past the cut cannot miss it.
	deadline := time.Now().Add(60 * time.Second)
	for dom.Stats().PeersDown < int64(len(cross)) {
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("rank %d: cross peers never went down (stats %+v)", me, dom.Stats()))
		}
		for _, p := range cross {
			_, verr := gupcxx.RPCWire(r, p, echo, []byte("cut?"), gupcxx.OpDeadline(2*time.Second)).WaitErr()
			if verr != nil && !tolerableChurnErr(verr) {
				panic(fmt.Sprintf("cross op %d->%d failed untyped: %v", me, p, verr))
			}
		}
		r.Serve()
	}
	// The cut severs only cross-group links: the in-group pair still works.
	mustEcho(r, inGroup, echo, 60*time.Second)
	// Operations toward a severed peer fail at injection while it is Down.
	for _, p := range cross {
		if !r.PeerDown(p) {
			continue // already healed under a skewed scenario clock
		}
		_, verr := gupcxx.RPCWire(r, p, echo, []byte("dead"), gupcxx.OpDeadline(2*time.Second)).WaitErr()
		if verr == nil || !tolerableChurnErr(verr) {
			panic(fmt.Sprintf("op toward severed peer %d resolved as %v", p, verr))
		}
	}

	if terminal {
		// Healing disabled: the network heals (scenario phase 2) but the
		// pairs must stay Down. Hold well past the heal time and re-check.
		hold := time.Now().Add(4 * time.Second)
		for time.Now().Before(hold) {
			for _, p := range cross {
				if !r.PeerDown(p) {
					panic(fmt.Sprintf("rank %d: peer %d resurrected despite DisableHealing", me, p))
				}
			}
			r.Serve()
		}
		s := dom.Stats()
		if s.PeersHealed != 0 {
			panic(fmt.Sprintf("PeersHealed = %d with DisableHealing", s.PeersHealed))
		}
		if s.ProbesSent != 0 {
			panic(fmt.Sprintf("ProbesSent = %d with DisableHealing", s.ProbesSent))
		}
		mustEcho(r, inGroup, echo, 60*time.Second)
		// In-group end barrier: world collectives would include the severed
		// half, so each rank marks its partner and waits to be marked.
		markDeadline := time.Now().Add(60 * time.Second)
		for {
			_, err := gupcxx.RPCWire(r, inGroup, mark, []byte{1}, gupcxx.OpDeadline(5*time.Second)).WaitErr()
			if err == nil {
				break
			}
			if !tolerableChurnErr(err) || time.Now().After(markDeadline) {
				panic(fmt.Sprintf("in-group end barrier %d->%d: %v", me, inGroup, err))
			}
		}
		hold = time.Now().Add(120 * time.Second)
		for marks.Load() < 1 {
			if time.Now().After(hold) {
				panic("in-group end barrier never completed")
			}
			r.Serve()
		}
		return
	}

	// Heal phase: wait for both cross peers to return to Alive.
	deadline = time.Now().Add(60 * time.Second)
	for {
		alive := 0
		for _, p := range cross {
			if !r.PeerDown(p) {
				alive++
			}
		}
		if alive == len(cross) && dom.Stats().PeersHealed >= int64(len(cross)) {
			break
		}
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("rank %d: cross peers never healed (stats %+v)", me, dom.Stats()))
		}
		r.Serve()
	}
	s := dom.Stats()
	// At least one heal per severed pair. Strictly more is possible on an
	// oversubscribed host — a heartbeat gap long enough to flap a healthy
	// link down and heal it again is scheduling noise, not a protocol bug —
	// but every down must have been healed: readmission stays at zero and
	// the incarnations must be the ones recorded before the cut.
	if s.PeersHealed < int64(len(cross)) {
		panic(fmt.Sprintf("PeersHealed = %d, want >= %d (one per severed pair)", s.PeersHealed, len(cross)))
	}
	if s.PeersReadmitted != 0 {
		panic(fmt.Sprintf("PeersReadmitted = %d, want 0: healing must not reincarnate", s.PeersReadmitted))
	}
	for _, p := range cross {
		if got := dom.IncarnationOf(me, p); got != crossInc[p] {
			panic(fmt.Sprintf("peer %d incarnation changed across heal: %d -> %d", p, crossInc[p], got))
		}
		// The state settles to alive; a transient "suspect" from a stolen
		// timeslice is legal en route, so poll rather than assert an instant.
		stDeadline := time.Now().Add(30 * time.Second)
		for dom.LivenessState(me, p) != "alive" {
			if time.Now().After(stDeadline) {
				panic(fmt.Sprintf("peer %d state %q after heal, want alive", p, dom.LivenessState(me, p)))
			}
			r.Serve()
		}
	}

	// The healed wire carries RPC and RMA in both directions across the
	// old cut. Every rank writes into its cross partner's segment; the
	// partner (cross partner of c is me again) wrote into ours.
	for _, p := range cross {
		mustEcho(r, p, echo, 60*time.Second)
	}
	c := (me + n/2) % n
	gupcxx.Rput(r, uint64(1000+me), words[c]).Wait()
	r.Barrier() // all four ranks are alive again: world collectives work
	if got := *word.Local(r); got != uint64(1000+c) {
		panic(fmt.Sprintf("post-heal put: rank %d holds %d, want %d", me, got, 1000+c))
	}
	if got := gupcxx.Rget(r, words[c]).Wait(); got != uint64(1000+me) {
		panic(fmt.Sprintf("post-heal get: read %d from rank %d, want %d", got, c, 1000+me))
	}
	r.Barrier()
}

// TestMultiprocPartition: a 4-rank process world is split 2|2 by the
// scenario DSL, held apart for 3 seconds (dozens of DownAfter periods),
// then healed. Every process must observe the cut as typed fast failures,
// heal every severed pair under the same incarnation with zero
// readmissions, and carry traffic across the healed cut — then exit
// cleanly, leak-free.
func TestMultiprocPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("partition soak skipped in -short mode")
	}
	defer leakCheck(t)()
	out := &syncBuffer{}
	lw, err := boot.LaunchLocal(4, 13, workerArgv(), []string{
		workerEnv + "=partition",
		// A suite-wide loss preset would turn the exact heal counts the
		// workers assert into flap counts: pin a clean wire.
		"GUPCXX_UDP_FAULT=",
		"GUPCXX_UDP_SCENARIO=at=3s partition=0,1|2,3; at=6s heal",
	}, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Kill()
	if err := lw.Wait(); err != nil {
		t.Fatalf("partition world failed: %v\noutput:\n%s", err, out.String())
	}
	if got := strings.Count(out.String(), "WORKER_OK scenario=partition"); got != 4 {
		t.Errorf("%d of 4 ranks reported success; output:\n%s", got, out.String())
	}
}

// TestMultiprocPartitionHealingDisabled pins the kill switch: the same
// split under Config.DisableHealing leaves the severed pairs terminally
// Down — no probes, no heals — while the intra-group halves keep working
// and every process still exits cleanly.
func TestMultiprocPartitionHealingDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("partition soak skipped in -short mode")
	}
	defer leakCheck(t)()
	out := &syncBuffer{}
	lw, err := boot.LaunchLocal(4, 17, workerArgv(), []string{
		workerEnv + "=partition-terminal",
		disableHealEnv + "=1",
		"GUPCXX_UDP_FAULT=",
		"GUPCXX_UDP_SCENARIO=at=1s partition=0,1|2,3; at=3s heal",
	}, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Kill()
	if err := lw.Wait(); err != nil {
		t.Fatalf("terminal-partition world failed: %v\noutput:\n%s", err, out.String())
	}
	if got := strings.Count(out.String(), "WORKER_OK scenario=partition-terminal"); got != 4 {
		t.Errorf("%d of 4 ranks reported success; output:\n%s", got, out.String())
	}
	if strings.Contains(out.String(), "peer-healed") {
		t.Errorf("heal observed despite DisableHealing; output:\n%s", out.String())
	}
}
