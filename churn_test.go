package gupcxx_test

// The kill/restart fault suite: a 4-rank process-per-rank world under
// injected datagram loss, with one rank killed and relaunched several
// times. Survivors must keep completing operations among themselves
// through every cycle (ops against a dead incarnation fail with
// ErrPeerUnreachable, never hang), each restarted incarnation must be
// readmitted by every survivor, and traffic must flow both directions
// with the readmitted rank afterwards. Run it via `make test-churn`
// (wired into CI) or as part of the ordinary test run.

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gupcxx"
	"gupcxx/internal/boot"
)

// churnCyclesEnv tells the workers how many kill/restart cycles the
// parent will drive, so survivors know when the churn is over.
const churnCyclesEnv = "GUPCXX_TEST_CYCLES"

func churnCycles() int {
	n, err := strconv.Atoi(os.Getenv(churnCyclesEnv))
	if err != nil || n < 1 {
		return 3
	}
	return n
}

// tolerableChurnErr reports whether an RPC failure toward the victim is
// an expected churn outcome: the incarnation died (ErrPeerUnreachable) or
// the reply is delayed past the probe deadline by loss plus restart
// timing. Anything else is a real bug.
func tolerableChurnErr(err error) bool {
	return errors.Is(err, gupcxx.ErrPeerUnreachable) ||
		errors.Is(err, gupcxx.ErrDeadlineExceeded) ||
		errors.Is(err, gupcxx.ErrBackpressure)
}

// mustEcho issues one echo RPC that has to succeed within wait — the
// survivor-to-survivor invariant (and the rejoiner's proof of
// readmission, where blocking until the join lands is the point).
func mustEcho(r *gupcxx.Rank, to int, echo gupcxx.RPCHandlerID, wait time.Duration) {
	deadline := time.Now().Add(wait)
	for {
		_, err := gupcxx.RPCWire(r, to, echo, []byte{byte(to)}, gupcxx.OpDeadline(5*time.Second)).WaitErr()
		if err == nil {
			return
		}
		if !tolerableChurnErr(err) {
			panic(fmt.Sprintf("echo %d->%d: %v", r.Me(), to, err))
		}
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("echo %d->%d never succeeded within %v: last %v", r.Me(), to, wait, err))
		}
	}
}

// churnScenario is the per-rank body of TestMultiprocChurn. The highest
// rank is the victim the parent kills and relaunches; the rest are
// survivors that keep trafficking through every cycle.
func churnScenario(w *gupcxx.World, r *gupcxx.Rank, echo, mark gupcxx.RPCHandlerID, marks *atomic.Int64) {
	me, n := r.Me(), r.N()
	victim := n - 1
	cycles := churnCycles()

	if me == victim {
		if !w.Rejoined() {
			// First incarnation: join the launch barrier, then serve until
			// the parent kills us. The deadline is a loud backstop against
			// a parent that never does.
			r.Barrier()
			fmt.Printf("WORKER_READY rank=%d\n", me)
			deadline := time.Now().Add(120 * time.Second)
			for time.Now().Before(deadline) {
				r.Serve()
			}
			panic("victim was never killed")
		}
		// A restarted incarnation: no collectives — the survivors are mid-
		// run and will not re-enter a barrier. Prove readmission by
		// completing an RPC to every survivor (this blocks until each one
		// processes our join frames), announce it, then serve until every
		// survivor has marked us done. Intermediate incarnations are
		// killed somewhere in this loop; only the last one returns.
		for p := 0; p < victim; p++ {
			mustEcho(r, p, echo, 60*time.Second)
		}
		fmt.Printf("WORKER_REJOINED inc=%d\n", w.Incarnation())
		deadline := time.Now().Add(120 * time.Second)
		for marks.Load() < int64(victim) {
			if time.Now().After(deadline) {
				panic("survivors never finished the churn")
			}
			r.Serve()
		}
		return
	}

	// Survivor: traffic through every cycle. Survivor pairs must never
	// fail; the victim is probed with a bounded deadline and its deaths
	// are tolerated. Done when every restart cycle has been readmitted
	// here AND a probe of the final incarnation succeeded.
	r.Barrier()
	fmt.Printf("WORKER_READY rank=%d\n", me)
	deadline := time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("survivor %d: churn never completed (readmitted %d/%d)",
				me, w.Domain().Stats().PeersReadmitted, cycles))
		}
		for p := 0; p < victim; p++ {
			if p != me {
				mustEcho(r, p, echo, 60*time.Second)
			}
		}
		_, verr := gupcxx.RPCWire(r, victim, echo, []byte("probe"), gupcxx.OpDeadline(5*time.Second)).WaitErr()
		if verr != nil && !tolerableChurnErr(verr) {
			panic(fmt.Sprintf("victim probe: %v", verr))
		}
		if verr == nil && w.Domain().Stats().PeersReadmitted >= int64(cycles) {
			break
		}
	}
	// End barrier: mark every other rank (the victim's final incarnation
	// included — survivor→victim traffic after the last readmission), then
	// hold our RPC service up until the other survivors have marked us.
	for p := 0; p < n; p++ {
		if p == me {
			continue
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			_, err := gupcxx.RPCWire(r, p, mark, []byte{1}, gupcxx.OpDeadline(5*time.Second)).WaitErr()
			if err == nil {
				break
			}
			if !tolerableChurnErr(err) || time.Now().After(deadline) {
				panic(fmt.Sprintf("end barrier %d->%d: %v", me, p, err))
			}
		}
	}
	hold := time.Now().Add(120 * time.Second)
	for marks.Load() < int64(n-2) {
		if time.Now().After(hold) {
			panic("end barrier never completed")
		}
		r.Serve()
	}
}

// TestMultiprocChurn: a 4-rank world under 25% injected datagram loss
// survives repeated kill/restart cycles of one rank. Every cycle the
// victim is SIGKILLed and relaunched through the launcher's RestartRank
// hook; the restarted process re-registers with the still-running
// rendezvous server, rejoins under a bumped epoch, and is readmitted by
// every survivor. The world then finishes cleanly: all four final
// processes exit zero.
func TestMultiprocChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn soak skipped in -short mode")
	}
	defer leakCheck(t)()
	const cycles = 3
	out := &syncBuffer{}
	lw, err := boot.LaunchLocal(4, 5, workerArgv(), []string{
		workerEnv + "=churn",
		churnCyclesEnv + "=" + strconv.Itoa(cycles),
		"GUPCXX_UDP_FAULT=drop=0.25,seed=11",
	}, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Kill()

	waitMarker := func(marker string, count int, wait time.Duration) {
		t.Helper()
		deadline := time.Now().Add(wait)
		for strings.Count(out.String(), marker) < count {
			if time.Now().After(deadline) {
				t.Fatalf("fewer than %d %q markers; output:\n%s", count, marker, out.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitMarker("WORKER_READY", 4, 60*time.Second)
	for c := 1; c <= cycles; c++ {
		// Let churned traffic flow against the live incarnation first.
		time.Sleep(500 * time.Millisecond)
		if err := lw.RestartRank(3); err != nil {
			t.Fatalf("restart cycle %d: %v", c, err)
		}
		waitMarker("WORKER_REJOINED", c, 60*time.Second)
	}
	if err := lw.Wait(); err != nil {
		t.Fatalf("churn world failed: %v\noutput:\n%s", err, out.String())
	}
	if got := strings.Count(out.String(), "WORKER_OK scenario=churn"); got != 4 {
		t.Errorf("%d of 4 final processes reported success; output:\n%s", got, out.String())
	}
	if got := strings.Count(out.String(), "WORKER_REJOINED"); got != cycles {
		t.Errorf("%d readmissions reported, want %d; output:\n%s", got, cycles, out.String())
	}
}
