package gupcxx_test

// BENCH_7: the cost of leaving the address space. The same op-pipeline
// families measured two ways on one machine:
//
//   - BenchmarkOpPipelineUDP — an in-process UDP world. The ranks are
//     co-located, so the dynamic locality check resolves every access to
//     the in-memory path; the wire below is bound but idle. The eager
//     rows must stay at 0 allocs/op — the multiproc refactor may not tax
//     the single-process fast path.
//   - BenchmarkOpPipelineMultiproc — a 2-process loopback world. The
//     bench process IS rank 0; rank 1 is a spawned child of this test
//     binary serving progress. Every op is a real UDP round trip through
//     the reliability layer: this is the floor a paper experiment pays
//     per remote op before wire latency is added.
//
// scripts/check_bench7.sh gates the record (make bench-multiproc
// regenerates BENCH_7.json).

import (
	"io"
	"os"
	"os/exec"
	"strings"
	"testing"

	"gupcxx"
	"gupcxx/internal/boot"
)

// pipeFamily is one measured op family, shared by both BENCH_7 harnesses.
type pipeFamily struct {
	name string
	run  func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64])
}

func pipeFamilies() []pipeFamily {
	return []pipeFamily{
		{"put", func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
			for i := 0; i < b.N; i++ {
				gupcxx.Rput(r, uint64(i), t).Wait()
			}
		}},
		{"get", func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += gupcxx.Rget(r, t).Wait()
			}
			benchSinkU64 = sink
		}},
		{"getbulk", func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
			var buf [1]uint64
			for i := 0; i < b.N; i++ {
				gupcxx.RgetBulk(r, t, buf[:]).Wait()
			}
		}},
		{"fetchadd", func(b *testing.B, r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
			ad := gupcxx.NewAtomicDomain[uint64](r)
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += ad.FetchAdd(t, 1).Wait()
			}
			benchSinkU64 = sink
		}},
	}
}

// udpWorld is microWorld on the UDP conduit: same two co-located ranks,
// but with the full wire substrate (sockets, reliability, liveness)
// armed underneath the in-memory path.
func udpWorld(b *testing.B, ver gupcxx.Version, fn func(r *gupcxx.Rank, target gupcxx.GlobalPtr[uint64])) {
	b.Helper()
	w, err := gupcxx.NewWorld(gupcxx.Config{
		Ranks:        2,
		Conduit:      gupcxx.UDP,
		Version:      ver,
		SegmentBytes: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		target := gupcxx.New[uint64](r)
		targets := gupcxx.ExchangePtr(r, target)
		r.Barrier()
		if r.Me() == 0 {
			fn(r, targets[1])
		}
		r.Barrier()
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkOpPipelineUDP(b *testing.B) {
	for _, fam := range pipeFamilies() {
		b.Run(fam.name, func(b *testing.B) {
			for _, ver := range benchVersions {
				b.Run(ver.Name, func(b *testing.B) {
					b.ReportAllocs()
					fam := fam
					udpWorld(b, ver, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
						b.ResetTimer()
						fam.run(b, r, t)
						b.StopTimer()
					})
				})
			}
		})
	}
}

// benchWorldEnv rebuilds the process environment without any leftover
// world contract or worker-scenario gate, so a spawned child sees exactly
// the variables we append.
func benchWorldEnv() []string {
	var env []string
	for _, kv := range os.Environ() {
		if strings.HasPrefix(kv, boot.EnvVar+"=") || strings.HasPrefix(kv, workerEnv+"=") {
			continue
		}
		env = append(env, kv)
	}
	return env
}

// multiprocBenchWorld makes this benchmark process rank 0 of a 2-process
// loopback world: it hosts the rendezvous, spawns rank 1 (this test
// binary in worker mode, scenario "bench" — publish a target word, then
// serve progress until we depart), and runs fn against the target in the
// child's segment.
func multiprocBenchWorld(b *testing.B, fn func(r *gupcxx.Rank, target gupcxx.GlobalPtr[uint64])) {
	b.Helper()
	const epoch = 13
	rv, err := boot.NewRendezvous("127.0.0.1:0", 2, epoch)
	if err != nil {
		b.Fatal(err)
	}
	child := exec.Command(os.Args[0], "-test.run", "^TestMultiprocWorkerProcess$", "-test.count=1")
	spec1 := boot.Spec{Ranks: 2, Rank: 1, Epoch: epoch, Rendezvous: rv.Addr()}
	child.Env = append(benchWorldEnv(), workerEnv+"=bench", boot.EnvVar+"="+spec1.Env())
	child.Stdout = io.Discard
	child.Stderr = os.Stderr
	if err := child.Start(); err != nil {
		rv.Close()
		b.Fatal(err)
	}
	reap := func() {
		child.Process.Kill()
		child.Wait()
	}
	spec0 := boot.Spec{Ranks: 2, Rank: 0, Epoch: epoch, Rendezvous: rv.Addr()}
	os.Setenv(boot.EnvVar, spec0.Env())
	defer os.Unsetenv(boot.EnvVar)
	w, ok, err := gupcxx.WorldFromEnv(gupcxx.Config{SegmentBytes: 1 << 16})
	if err != nil || !ok {
		reap()
		b.Fatalf("bootstrap rank 0: ok=%v err=%v", ok, err)
	}
	if err := rv.Wait(); err != nil {
		reap()
		w.Close()
		b.Fatal(err)
	}
	runErr := w.Run(func(r *gupcxx.Rank) {
		target := gupcxx.New[uint64](r)
		targets := gupcxx.ExchangePtr(r, target)
		r.Barrier()
		fn(r, targets[1])
	})
	// No closing barrier: our departure (the goodbye frame sent by Close,
	// after the exit drain) is what releases the serving child.
	w.Close()
	if runErr != nil {
		reap()
		b.Fatal(runErr)
	}
	if err := child.Wait(); err != nil {
		b.Fatalf("serving rank: %v", err)
	}
}

func BenchmarkOpPipelineMultiproc(b *testing.B) {
	for _, fam := range pipeFamilies() {
		b.Run(fam.name, func(b *testing.B) {
			b.ReportAllocs()
			fam := fam
			multiprocBenchWorld(b, func(r *gupcxx.Rank, t gupcxx.GlobalPtr[uint64]) {
				b.ResetTimer()
				fam.run(b, r, t)
				b.StopTimer()
			})
		})
	}
}
