package gupcxx_test

import (
	"sync/atomic"
	"testing"

	"gupcxx"
)

// TestSmokeRing exercises allocation, pointer exchange, put, get, atomics,
// RPC, and barriers across ranks on every conduit and version.
func TestSmokeRing(t *testing.T) {
	for _, conduit := range []gupcxx.Conduit{gupcxx.SMP, gupcxx.PSHM, gupcxx.SIM, gupcxx.UDP} {
		for _, ver := range []gupcxx.Version{gupcxx.Legacy2021_3_0, gupcxx.Defer2021_3_6, gupcxx.Eager2021_3_6} {
			cfg := gupcxx.Config{
				Ranks:        4,
				Conduit:      conduit,
				RanksPerNode: 2,
				Version:      ver,
				SegmentBytes: 1 << 16,
			}
			name := conduit.String() + "/" + ver.Name
			t.Run(name, func(t *testing.T) {
				var rpcRuns atomic.Int64
				err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
					me, n := r.Me(), r.N()

					// Each rank publishes a cell; neighbor writes into it.
					cell := gupcxx.New[int64](r)
					*cell.Local(r) = -1
					ptrs := gupcxx.ExchangePtr(r, cell)
					r.Barrier()

					next := ptrs[(me+1)%n]
					gupcxx.Rput(r, int64(me), next).Wait()
					r.Barrier()

					got := *cell.Local(r)
					want := int64((me - 1 + n) % n)
					if got != want {
						t.Errorf("rank %d: cell = %d, want %d", me, got, want)
					}

					// Rget from the neighbor.
					v := gupcxx.Rget(r, next).Wait()
					if v != int64(me) {
						t.Errorf("rank %d: rget = %d, want %d", me, v, me)
					}

					// Remote atomics: everyone adds into rank 0's counter.
					ctr := gupcxx.New[int64](r)
					*ctr.Local(r) = 0
					ctrs := gupcxx.ExchangePtr(r, ctr)
					r.Barrier()
					ad := gupcxx.NewAtomicDomain[int64](r)
					ad.Add(ctrs[0], int64(me)+1).Wait()
					r.Barrier()
					if me == 0 {
						sum := ad.Load(ctrs[0]).Wait()
						want := int64(n * (n + 1) / 2)
						if sum != want {
							t.Errorf("atomic sum = %d, want %d", sum, want)
						}
					}

					// RPC round trip.
					peer := (me + 1) % n
					double := gupcxx.RPCCall(r, peer, func(tr *gupcxx.Rank) int {
						rpcRuns.Add(1)
						return tr.Me() * 2
					}).Wait()
					if double != peer*2 {
						t.Errorf("rank %d: rpc = %d, want %d", me, double, peer*2)
					}

					// Reductions.
					if s := r.SumU64(uint64(me)); s != uint64(n*(n-1)/2) {
						t.Errorf("rank %d: sum = %d", me, s)
					}
					r.Barrier()
				})
				if err != nil {
					t.Fatal(err)
				}
				if rpcRuns.Load() != int64(cfg.Ranks) {
					t.Errorf("rpc runs = %d, want %d", rpcRuns.Load(), cfg.Ranks)
				}
			})
		}
	}
}

// TestEagerVsDeferObservable checks the semantic difference the paper
// relaxes: under deferred notification a local put's future is not ready
// at initiation; under eager notification it is.
func TestEagerVsDeferObservable(t *testing.T) {
	run := func(ver gupcxx.Version, wantReady bool) {
		err := gupcxx.Launch(gupcxx.Config{Ranks: 1, Version: ver, SegmentBytes: 1 << 12}, func(r *gupcxx.Rank) {
			p := gupcxx.New[int64](r)
			res := gupcxx.Rput(r, 7, p)
			if res.Op.Ready() != wantReady {
				t.Errorf("%s: put future ready = %v, want %v", ver.Name, res.Op.Ready(), wantReady)
			}
			res.Wait()
			if *p.Local(r) != 7 {
				t.Errorf("%s: value = %d", ver.Name, *p.Local(r))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	run(gupcxx.Eager2021_3_6, true)
	run(gupcxx.Defer2021_3_6, false)
	run(gupcxx.Legacy2021_3_0, false)
}
