package gupcxx_test

import (
	"testing"

	"gupcxx"
)

// TestAccessors sweeps the small read-only API surface.
func TestAccessors(t *testing.T) {
	if _, err := gupcxx.ParseConduit("pshm"); err != nil {
		t.Error(err)
	}
	if _, err := gupcxx.ParseConduit("nope"); err == nil {
		t.Error("bad conduit accepted")
	}
	w, err := gupcxx.NewWorld(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *gupcxx.Rank) {
		if r.World() != w {
			t.Error("World() wrong")
		}
		if r.Version().Name != gupcxx.Eager2021_3_6.Name {
			t.Error("Version() wrong")
		}
		if e := r.Engine(); e.Rank() != r.Me() || e.Version().Name != r.Version().Name {
			t.Error("engine accessors wrong")
		}
		if !r.LocalTo((r.Me() + 1) % r.N()) {
			t.Error("PSHM ranks must be mutually local")
		}
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := w.Domain().Config()
	if !cfg.SameNode(0, 1) {
		t.Error("SameNode wrong on PSHM")
	}
	if w.Domain().Endpoint(0).Domain() != w.Domain() {
		t.Error("endpoint Domain() wrong")
	}
	if w.Domain().Endpoint(1).LocalSegment(0) != w.Domain().Segment(0) {
		t.Error("LocalSegment wrong")
	}
	if w.Domain().Segment(0).Size() < 1<<12 {
		t.Error("segment size wrong")
	}
}
