package gupcxx_test

import (
	"testing"

	"gupcxx"
)

func TestAtomicOpsLocalAndRemote(t *testing.T) {
	for _, conduit := range []gupcxx.Conduit{gupcxx.PSHM, gupcxx.SIM} {
		cfg := gupcxx.Config{Ranks: 2, Conduit: conduit, SegmentBytes: 1 << 16}
		err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
			p := gupcxx.New[uint64](r)
			*p.Local(r) = 0
			ptrs := gupcxx.ExchangePtr(r, p)
			r.Barrier()
			if r.Me() == 0 {
				ad := gupcxx.NewAtomicDomain[uint64](r)
				tgt := ptrs[1]

				ad.Store(tgt, 100).Wait()
				if v := ad.Load(tgt).Wait(); v != 100 {
					t.Errorf("%v: load = %d", conduit, v)
				}
				if old := ad.FetchAdd(tgt, 5).Wait(); old != 100 {
					t.Errorf("%v: fetchadd old = %d", conduit, old)
				}
				ad.Add(tgt, 5).Wait()
				if v := ad.Load(tgt).Wait(); v != 110 {
					t.Errorf("%v: after adds = %d", conduit, v)
				}
				if old := ad.FetchXor(tgt, 0xF).Wait(); old != 110 {
					t.Errorf("%v: fetchxor old = %d", conduit, old)
				}
				ad.Xor(tgt, 0xF).Wait() // undo
				ad.And(tgt, 0xFF).Wait()
				ad.Or(tgt, 0x100).Wait()
				if v := ad.Load(tgt).Wait(); v != (110&0xFF)|0x100 {
					t.Errorf("%v: after and/or = %#x", conduit, v)
				}
				if old := ad.Exchange(tgt, 1).Wait(); old != (110&0xFF)|0x100 {
					t.Errorf("%v: exchange old = %#x", conduit, old)
				}
				if old := ad.CompareExchange(tgt, 1, 2).Wait(); old != 1 {
					t.Errorf("%v: cas old = %d", conduit, old)
				}
				if old := ad.CompareExchange(tgt, 1, 3).Wait(); old != 2 {
					t.Errorf("%v: failed cas old = %d", conduit, old)
				}
			}
			r.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAtomicIntoVariants(t *testing.T) {
	for _, conduit := range []gupcxx.Conduit{gupcxx.PSHM, gupcxx.SIM} {
		cfg := gupcxx.Config{Ranks: 2, Conduit: conduit, SegmentBytes: 1 << 16}
		err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
			p := gupcxx.New[int64](r)
			*p.Local(r) = 50
			ptrs := gupcxx.ExchangePtr(r, p)
			r.Barrier()
			if r.Me() == 0 {
				ad := gupcxx.NewAtomicDomain[int64](r)
				tgt := ptrs[1]
				var old int64

				ad.FetchAddInto(tgt, 7, &old).Wait()
				if old != 50 {
					t.Errorf("%v: FetchAddInto old = %d", conduit, old)
				}
				ad.FetchXorInto(tgt, 1, &old).Wait()
				if old != 57 {
					t.Errorf("%v: FetchXorInto old = %d", conduit, old)
				}
				ad.ExchangeInto(tgt, -5, &old).Wait()
				if old != 57^1 {
					t.Errorf("%v: ExchangeInto old = %d", conduit, old)
				}
				ad.CompareExchangeInto(tgt, -5, 11, &old).Wait()
				if old != -5 {
					t.Errorf("%v: CASInto old = %d", conduit, old)
				}
				if v := ad.Load(tgt).Wait(); v != 11 {
					t.Errorf("%v: final = %d", conduit, v)
				}
			}
			r.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAtomicSignedArithmetic(t *testing.T) {
	pairWorldI64(t, func(r *gupcxx.Rank, tgt gupcxx.GlobalPtr[int64]) {
		ad := gupcxx.NewAtomicDomain[int64](r)
		ad.Store(tgt, -10).Wait()
		if old := ad.FetchAdd(tgt, -5).Wait(); old != -10 {
			t.Errorf("signed fetchadd old = %d", old)
		}
		if v := ad.Load(tgt).Wait(); v != -15 {
			t.Errorf("signed add result = %d", v)
		}
	})
}

func pairWorldI64(t *testing.T, fn func(r *gupcxx.Rank, tgt gupcxx.GlobalPtr[int64])) {
	t.Helper()
	err := gupcxx.Launch(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 16},
		func(r *gupcxx.Rank) {
			p := gupcxx.New[int64](r)
			ptrs := gupcxx.ExchangePtr(r, p)
			r.Barrier()
			if r.Me() == 0 {
				fn(r, ptrs[1])
			}
			r.Barrier()
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAtomicPromiseDelivery(t *testing.T) {
	for _, ver := range []gupcxx.Version{gupcxx.Defer2021_3_6, gupcxx.Eager2021_3_6} {
		err := gupcxx.Launch(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, Version: ver, SegmentBytes: 1 << 16},
			func(r *gupcxx.Rank) {
				p := gupcxx.New[uint64](r)
				*p.Local(r) = 3
				ptrs := gupcxx.ExchangePtr(r, p)
				r.Barrier()
				if r.Me() == 0 {
					ad := gupcxx.NewAtomicDomain[uint64](r)
					pv := gupcxx.NewPromiseV[uint64](r)
					ad.FetchAddPromise(ptrs[1], 4, pv)
					if got := pv.Finalize().Wait(); got != 3 {
						t.Errorf("%s: promise old = %d", ver.Name, got)
					}
					pv2 := gupcxx.NewPromiseV[uint64](r)
					ad.FetchXorPromise(ptrs[1], 0, pv2)
					if got := pv2.Finalize().Wait(); got != 7 {
						t.Errorf("%s: second old = %d", ver.Name, got)
					}
				}
				r.Barrier()
			})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestAtomicEagerReadiness mirrors the microbenchmark structure: local
// atomic completions are ready at initiation only under eager.
func TestAtomicEagerReadiness(t *testing.T) {
	check := func(ver gupcxx.Version, want bool) {
		err := gupcxx.Launch(gupcxx.Config{Ranks: 2, Conduit: gupcxx.PSHM, Version: ver, SegmentBytes: 1 << 16},
			func(r *gupcxx.Rank) {
				p := gupcxx.New[uint64](r)
				ptrs := gupcxx.ExchangePtr(r, p)
				r.Barrier()
				if r.Me() == 0 {
					ad := gupcxx.NewAtomicDomain[uint64](r)
					res := ad.Add(ptrs[1], 1)
					if res.Op.Ready() != want {
						t.Errorf("%s: add ready=%v want %v", ver.Name, res.Op.Ready(), want)
					}
					res.Wait()
					f := ad.FetchAdd(ptrs[1], 1)
					if f.Ready() != want {
						t.Errorf("%s: fetchadd ready=%v want %v", ver.Name, f.Ready(), want)
					}
					f.Wait()
				}
				r.Barrier()
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	check(gupcxx.Eager2021_3_6, true)
	check(gupcxx.Defer2021_3_6, false)
	check(gupcxx.Legacy2021_3_0, false)
}

// TestAtomicContention: concurrent fetch-adds from all ranks produce
// distinct old values covering exactly [0, total).
func TestAtomicContention(t *testing.T) {
	const perRank = 200
	cfg := gupcxx.Config{Ranks: 4, Conduit: gupcxx.PSHM, SegmentBytes: 1 << 20}
	seen := make([][]uint64, cfg.Ranks)
	err := gupcxx.Launch(cfg, func(r *gupcxx.Rank) {
		ctr := gupcxx.New[uint64](r)
		*ctr.Local(r) = 0
		ptrs := gupcxx.ExchangePtr(r, ctr)
		r.Barrier()
		ad := gupcxx.NewAtomicDomain[uint64](r)
		mine := make([]uint64, 0, perRank)
		for i := 0; i < perRank; i++ {
			mine = append(mine, ad.FetchAdd(ptrs[0], 1).Wait())
		}
		seen[r.Me()] = mine
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	all := make(map[uint64]bool)
	for _, mine := range seen {
		for _, v := range mine {
			if all[v] {
				t.Fatalf("duplicate ticket %d", v)
			}
			all[v] = true
		}
	}
	if len(all) != 4*perRank {
		t.Errorf("tickets = %d", len(all))
	}
	for i := uint64(0); i < 4*perRank; i++ {
		if !all[i] {
			t.Fatalf("missing ticket %d", i)
		}
	}
}
