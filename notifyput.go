package gupcxx

import (
	"fmt"

	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
)

// Put-with-notify: the wire-encodable form of remote completion. A
// notify-put lands its data in the target's segment and then runs a
// *registered* wire-RPC handler (RegisterRPC) there with caller-supplied
// argument bytes, during the target's user-level progress — the same
// "remote_cx::as_rpc" shape as Rput(..., RemoteRPC(fn)), but with the
// handler named by id instead of carried as a closure, so the whole
// request is data and crosses process boundaries unchanged. In a
// Multiproc world this is the only remote-completion form; in-process
// worlds accept both (the closure form short-circuits through memory on
// the UDP conduit, counted as Stats.InMemFallbacks).

// RputNotify initiates a put of val to dst followed by the target-side
// invocation of registered handler id with args (the handler's reply
// bytes are discarded — a notify has no reply path). Completion requests
// in cxs cover the put's acknowledgment, which the target sends after the
// data is applied; the notify itself runs at the target's next user-level
// progress. Remote-completion requests are rejected (the notify IS the
// remote completion).
//
// The operation always travels the substrate's AM protocol, even to
// co-located targets: the notify must run on the target's progress
// goroutine, so there is no synchronous path to complete eagerly. args is
// copied at injection and may be reused immediately. A handler id
// unknown to this world fails the operation eagerly; an id that fails to
// resolve at the target (registration mismatch) is counted there
// (Stats.BadHandlerDrops) — the put still lands and acks.
func RputNotify[T any](r *Rank, val T, dst GlobalPtr[T], id RPCHandlerID, args []byte, cxs ...Cx) Result {
	return rputNotifyBytes(r, gasnet.ValueBytes(&val), dst.rank, dst.off, id, args, cxs)
}

// RputNotifyBulk is the bulk form of RputNotify: it puts the slice src to
// the array headed by dst, then notifies. The source buffer is staged at
// injection and may be reused immediately.
func RputNotifyBulk[T any](r *Rank, src []T, dst GlobalPtr[T], id RPCHandlerID, args []byte, cxs ...Cx) Result {
	return rputNotifyBytes(r, gasnet.SliceBytes(src), dst.rank, dst.off, id, args, cxs)
}

func rputNotifyBytes(r *Rank, data []byte, rank int32, off uint32, id RPCHandlerID, args []byte, cxs []Cx) Result {
	cxs = cxsOrDefault(cxs)
	rejectRemoteCx(cxs, "RputNotify")
	if int(id) >= len(r.w.rpcHandlers) {
		err := fmt.Errorf("gupcxx: notify-put to unregistered handler %d", id)
		return r.eng.Initiate(core.OpDesc{
			Kind: core.OpRMA,
			Peer: int(rank),
			Inject: func(_ func(ctx any), done func(error)) {
				done(err)
			},
		}, cxs)
	}
	return r.eng.Initiate(core.OpDesc{
		Kind:  core.OpRMA,
		Peer:  int(rank),
		Admit: true,
		Inject: func(_ func(ctx any), done func(error)) {
			r.ep.PutNotifyRemote(int(rank), off, data, uint32(id), args, done)
		},
	}, cxs)
}

// failNotWireEncodable books an operation refused at initiation because
// its completion set carries a closure that cannot cross a process
// boundary: every requested completion resolves with ErrNotWireEncodable
// and the pipeline records the failure phase.
func failNotWireEncodable(r *Rank, kind core.OpKind, peer int, cxs []Cx) Result {
	return r.eng.Initiate(core.OpDesc{
		Kind: kind,
		Peer: peer,
		Inject: func(_ func(ctx any), done func(error)) {
			done(ErrNotWireEncodable)
		},
	}, cxs)
}
