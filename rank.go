package gupcxx

import (
	"gupcxx/internal/core"
	"gupcxx/internal/gasnet"
)

// Rank is one SPMD process image: its endpoint into the substrate, its
// progress engine, and its collective state. A Rank is confined to the
// goroutine executing it (the one Run spawned for it, or the caller's for
// manually driven worlds); its methods must never be called concurrently.
type Rank struct {
	w           *World
	ep          *gasnet.Endpoint
	eng         *core.Engine
	staticLocal bool // conduit guarantees all ranks co-located (constexpr is_local)
	coll        *collState
	teamWorld   *Team         // cached world-team singleton
	dist        *distRegistry // this rank's dist-object instances
	wire        pendingWire   // outstanding wire-RPC calls
}

// Me returns this rank's index in [0, N()).
func (r *Rank) Me() int { return r.ep.Rank() }

// N returns the number of ranks in the world.
func (r *Rank) N() int { return r.w.Ranks() }

// World returns the owning World.
func (r *Rank) World() *World { return r.w }

// Version reports the emulated library version.
func (r *Rank) Version() Version { return r.w.ver }

// Engine exposes the rank's progress engine (statistics, MakeFuture,
// WhenAll).
func (r *Rank) Engine() *core.Engine { return r.eng }

// OpStats is the op-level observability snapshot returned by
// Rank.OpStats and World.OpStats: the unified pipeline's per-family ×
// per-phase counter matrix, together with the completion-machinery and
// substrate counters it is naturally read alongside.
type OpStats struct {
	// Ops counts pipeline phase transitions per operation family; index
	// as Ops[OpRMA][PhaseEagerCompleted] or via Ops.Of.
	Ops core.OpStats
	// Engine is the completion-machinery statistics (cell allocations,
	// defer-queue pushes, eager deliveries, ...).
	Engine core.Stats
	// Substrate is the wire/queue counter snapshot. It is domain-wide
	// (shared by all ranks of the process), not per-rank.
	Substrate gasnet.Stats
}

// OpStats returns this rank's op-lifecycle counters. Like Engine
// statistics, the counters are owned by the rank's goroutine: read them
// from that goroutine, or only after Run returns.
func (r *Rank) OpStats() OpStats {
	return OpStats{
		Ops:       r.eng.OpStats(),
		Engine:    r.eng.Stats,
		Substrate: r.w.dom.Stats(),
	}
}

// SetPhaseHook installs fn as this rank's pipeline phase observer (nil
// removes it). The hook runs on the rank's goroutine during initiation
// and progress and must not block; a nil hook costs nothing on the op
// fast path.
func (r *Rank) SetPhaseHook(fn core.PhaseHook) { r.eng.SetPhaseHook(fn) }

// Progress runs one step of this rank's progress engine at user level:
// substrate poll, deferred notifications, LPCs. Returns the number of
// events processed.
func (r *Rank) Progress() int { return r.eng.Progress() }

// ProgressInternal advances only internal-level progress (§II-B): inbound
// remote operations targeting this rank are serviced so peers advance,
// but no local notification — future readying, promise fulfillment, LPC,
// RPC, or remote-completion callback — is delivered. Use it inside
// compute loops that must not observe completion state changes.
func (r *Rank) ProgressInternal() int { return r.ep.PollInternal() }

// MakeFuture returns a ready value-less future, the seed of conjoining
// loops.
func (r *Rank) MakeFuture() Future { return r.eng.MakeFuture() }

// WhenAll conjoins value-less futures; see core.Engine.WhenAll for the
// short-circuit semantics.
func (r *Rank) WhenAll(fs ...Future) Future { return r.eng.WhenAll(fs...) }

// NewPromise allocates a value-less promise on this rank.
func (r *Rank) NewPromise() *Promise { return core.NewPromise(r.eng) }

// NewPromiseV allocates a value-carrying promise on rank r (a free
// function because methods cannot introduce type parameters).
func NewPromiseV[T any](r *Rank) *PromiseV[T] { return core.NewPromiseV[T](r.eng) }

// spinWait drives progress until cond holds.
func (r *Rank) spinWait(cond func() bool) {
	for !cond() {
		if r.eng.Progress() == 0 {
			r.eng.Idle()
		}
	}
}

// Serve drives progress like Progress, but relinquishes the CPU when the
// step finds nothing to do — a scheduler yield while the idle streak is
// short, a bounded park on the substrate once the wait looks long. This
// is the right shape for loops whose only job is to answer peers (worker
// serve loops, notification waits): a hot Progress spin steals the CPU
// from the very processes it is waiting on when ranks outnumber cores,
// which is every process-per-rank world on a small machine.
func (r *Rank) Serve() int {
	n := r.eng.Progress()
	if n == 0 {
		r.eng.Idle()
	}
	return n
}

// PeerDown reports whether the substrate's liveness detector currently
// declares target unreachable from this rank (always false on conduits
// without a detector). Operations targeting a down peer fail immediately
// with ErrPeerUnreachable. Down is no longer forever: a restarted peer
// that rejoins through the readmission protocol clears it, and a peer
// that went quiet behind a network partition heals back under the same
// incarnation once partition probes get through (Config.DisableHealing
// opts out) — so re-check per operation rather than caching the answer;
// a true observed before a recovery only means operations issued back
// then would have failed.
func (r *Rank) PeerDown(target int) bool { return r.ep.PeerDown(target) }

// DownPeers returns the ranks this rank has declared down, in rank order
// (nil when none).
func (r *Rank) DownPeers() []int { return r.ep.DownPeers() }

// Flow returns a snapshot of the reliability flow state toward target:
// smoothed RTT, retransmission timeout, adaptive window, in-flight
// occupancy in datagrams and bytes, and the receive-side reorder-buffer
// occupancy against its byte budget. The zero FlowState is returned on
// conduits without a reliability layer (SMP) and for self/out-of-range
// targets.
func (r *Rank) Flow(target int) FlowState { return r.w.dom.FlowState(r.Me(), target) }

// LocalTo reports whether this rank has direct load/store access to the
// target rank's segment (the two ranks are co-located on one node).
func (r *Rank) LocalTo(target int) bool { return r.localTo(int32(target)) }

// localTo reports whether this rank has direct load/store access to
// target's segment. Under the ConstexprLocal optimization on the SMP
// conduit this is a compile-time constant true; otherwise it is the
// dynamic locality query every RMA call performs (§II-C).
func (r *Rank) localTo(target int32) bool {
	if r.staticLocal {
		return true
	}
	return r.ep.Local(int(target))
}
