package gupcxx

import "fmt"

// DistObject is the analogue of upcxx::dist_object<T>: a handle to one
// value of type T per rank, constructed collectively, where any rank can
// fetch any other rank's value asynchronously. Unlike GlobalPtr, the
// value lives in ordinary Go memory (it may contain pointers, slices,
// maps); fetches ship through the RPC machinery rather than RMA.
//
// Construction is collective: every rank must call NewDistObject the same
// number of times, in the same order, which is what matches up the
// per-rank instances (mirroring dist_object's id-based matching in
// UPC++).
type DistObject[T any] struct {
	r  *Rank
	id int
}

// distRegistry is a rank's table of its own dist-object values, reachable
// by remote fetch RPCs through the endpoint context.
type distRegistry struct {
	vals []any
}

// NewDistObject collectively registers v as the calling rank's instance
// and returns the handle.
func NewDistObject[T any](r *Rank, v T) *DistObject[T] {
	if r.dist == nil {
		r.dist = &distRegistry{}
	}
	id := len(r.dist.vals)
	r.dist.vals = append(r.dist.vals, v)
	return &DistObject[T]{r: r, id: id}
}

// Local returns the value of the rank that created this handle. Inside
// an RPC body executing on another rank, use On(tr) with the rank the
// body received — the handle captured by the closure still belongs to the
// sender.
func (d *DistObject[T]) Local() T {
	return d.r.dist.vals[d.id].(T)
}

// On returns the instance owned by rank tr. tr must be the rank whose
// goroutine is executing the call (the *Rank an RPC body receives); this
// is how an RPC shipped with a captured handle addresses the *target's*
// instance.
func (d *DistObject[T]) On(tr *Rank) T {
	return fetchDist[T](tr, d.id)
}

// SetLocal replaces the calling rank's own value.
func (d *DistObject[T]) SetLocal(v T) {
	d.r.dist.vals[d.id] = v
}

// Fetch retrieves the target rank's instance, returning a value future —
// the analogue of dist_object::fetch. The target must have constructed
// its instance (typically guaranteed by a barrier after construction).
func (d *DistObject[T]) Fetch(target int) FutureV[T] {
	id := d.id
	// A self-fetch is still asynchronous (it runs as an LPC at the next
	// progress call), matching UPC++'s progress rules.
	return RPCCall(d.r, target, func(tr *Rank) T {
		return fetchDist[T](tr, id)
	})
}

// fetchDist reads instance id of the registry on rank tr.
func fetchDist[T any](tr *Rank, id int) T {
	if tr.dist == nil || id >= len(tr.dist.vals) {
		panic(fmt.Sprintf("gupcxx: dist_object %d not constructed on rank %d (missing barrier?)", id, tr.Me()))
	}
	return tr.dist.vals[id].(T)
}
